"""The spirv-fuzz-style fuzzer driver (§3.2).

Repeatedly runs fuzzer passes over the module, probabilistically deciding
whether to continue and which pass to run next.  With recommendations
enabled (the default), the driver maintains a queue of follow-on passes and,
when picking the next pass, chooses with uniform probability between popping
the queue and picking at random — exactly the strategy the paper describes
and ablates (spirv-fuzz vs spirv-fuzz-simple).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.core.context import Context
from repro.core.fuzzer_passes import Budget, DonorBank, FuzzerPass, IdSource, build_passes
from repro.core.transformation import Transformation

#: The paper's hard cap on transformations per run.
PAPER_TRANSFORMATION_LIMIT = 2000


@dataclass
class FuzzerOptions:
    """Tuning knobs for one fuzzing run."""

    max_transformations: int = 150
    min_passes: int = 15
    max_passes: int = 80
    stop_probability: float = 0.03
    enable_recommendations: bool = True
    #: How many follow-on passes (at most) to enqueue after each pass.
    max_recommendations_per_pass: int = 2
    validate_each: bool = False
    #: Robustness mode: snapshot the context before each transformation
    #: effect and, if the effect raises, roll back and skip that
    #: transformation instead of aborting the whole seed.  Off by default —
    #: effects never raise in a correct build, and the per-application
    #: snapshot costs a module clone.
    recover_effect_errors: bool = False

    @classmethod
    def simple(cls, **overrides) -> "FuzzerOptions":
        """spirv-fuzz-simple: the recommendations strategy disabled."""
        return cls(enable_recommendations=False, **overrides)


@dataclass
class FuzzResult:
    """Outcome of one fuzzing run."""

    variant: "object"
    transformations: list[Transformation]
    context: Context
    passes_run: list[str] = field(default_factory=list)


class Fuzzer:
    """Applies randomized semantics-preserving transformations to modules."""

    def __init__(
        self,
        donors: list | None = None,
        options: FuzzerOptions | None = None,
    ) -> None:
        self.donor_bank = DonorBank(donors or [])
        self.options = options or FuzzerOptions()

    def run(self, module, inputs: dict | None = None, seed: int = 0) -> FuzzResult:
        """Fuzz a clone of *module*; the original is untouched."""
        from repro.ir.validator import validate

        rng = random.Random(seed)
        ctx = Context.start(module, inputs)
        ids = IdSource(ctx.module.id_bound + 1000)
        budget = Budget(
            min(self.options.max_transformations, PAPER_TRANSFORMATION_LIMIT)
        )
        passes = build_passes(self.donor_bank)
        by_name = {p.name: p for p in passes}
        queue: deque[FuzzerPass] = deque()
        transformations: list[Transformation] = []
        passes_run: list[str] = []

        rounds = 0
        while not budget.exhausted() and rounds < self.options.max_passes:
            rounds += 1
            if (
                self.options.enable_recommendations
                and queue
                and rng.random() < 0.5
            ):
                fuzzer_pass = queue.popleft()
            else:
                fuzzer_pass = rng.choice(passes)
            applied = fuzzer_pass.run(
                ctx,
                rng,
                ids,
                budget,
                recover=self.options.recover_effect_errors,
            )
            transformations.extend(applied)
            passes_run.append(fuzzer_pass.name)
            if self.options.validate_each and applied:
                errors = validate(ctx.module)
                if errors:
                    raise AssertionError(
                        f"pass {fuzzer_pass.name} broke the module: {errors[:3]}"
                    )
            if (
                self.options.enable_recommendations
                and fuzzer_pass.follow_ons
                and applied  # a pass that did nothing enables nothing
            ):
                follow_ons = [
                    by_name[name]
                    for name in fuzzer_pass.follow_ons
                    if name in by_name
                ]
                rng.shuffle(follow_ons)
                queue.extend(
                    follow_ons[: self.options.max_recommendations_per_pass]
                )
            if (
                rounds >= self.options.min_passes
                and rng.random() < self.options.stop_probability
            ):
                break

        return FuzzResult(
            variant=ctx.module,
            transformations=transformations,
            context=ctx,
            passes_run=passes_run,
        )
