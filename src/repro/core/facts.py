"""Fact management (§3.2 of the paper).

Transformations establish facts that later transformations' preconditions
take on trust:

* ``DeadBlock(b)`` — block *b* is dynamically unreachable.
* ``Synonymous(a, b)`` — two data descriptors are equal wherever both are
  available.  A :class:`DataDescriptor` is an id plus an optional literal
  index path into a composite, so ``Synonymous((v, (0,)), (x, ()))`` says
  component 0 of *v* equals *x*.  Synonymy is maintained as a union-find over
  descriptors.
* ``Irrelevant(i)`` — the value of id *i* never affects the final output.
* ``IrrelevantUse(inst, k)`` — operand *k* of instruction *inst* can be
  replaced by any type-correct id without affecting output (our per-use
  refinement of the paper's irrelevant-id fact, used for call arguments).
* ``IrrelevantPointee(p)`` — data pointed to by *p* never affects output.
* ``LiveSafe(f)`` — calling *f* from anywhere preserves output, provided
  pointer arguments are ``IrrelevantPointee``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DataDescriptor:
    """An id, optionally refined by a literal index path into a composite."""

    object_id: int
    indices: tuple[int, ...] = ()

    @property
    def is_plain(self) -> bool:
        return not self.indices

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_plain:
            return f"%{self.object_id}"
        return f"%{self.object_id}[{','.join(map(str, self.indices))}]"


def plain(object_id: int) -> DataDescriptor:
    return DataDescriptor(object_id)


@dataclass
class FactManager:
    """Holds the fact set *F* of a transformation context."""

    dead_blocks: set[int] = field(default_factory=set)
    irrelevant_ids: set[int] = field(default_factory=set)
    irrelevant_uses: set[tuple[int, int]] = field(default_factory=set)
    irrelevant_pointees: set[int] = field(default_factory=set)
    livesafe_functions: set[int] = field(default_factory=set)
    _synonym_parent: dict[DataDescriptor, DataDescriptor] = field(default_factory=dict)

    # -- dead blocks -----------------------------------------------------------

    def add_dead_block(self, label: int) -> None:
        self.dead_blocks.add(label)

    def is_dead_block(self, label: int) -> bool:
        return label in self.dead_blocks

    # -- irrelevance -----------------------------------------------------------

    def add_irrelevant(self, value_id: int) -> None:
        self.irrelevant_ids.add(value_id)

    def is_irrelevant(self, value_id: int) -> bool:
        return value_id in self.irrelevant_ids

    def add_irrelevant_use(self, instruction_id: int, operand_index: int) -> None:
        self.irrelevant_uses.add((instruction_id, operand_index))

    def is_irrelevant_use(self, instruction_id: int, operand_index: int) -> bool:
        return (instruction_id, operand_index) in self.irrelevant_uses

    def add_irrelevant_pointee(self, pointer_id: int) -> None:
        self.irrelevant_pointees.add(pointer_id)

    def is_irrelevant_pointee(self, pointer_id: int) -> bool:
        return pointer_id in self.irrelevant_pointees

    # -- live-safety -----------------------------------------------------------

    def add_livesafe(self, function_id: int) -> None:
        self.livesafe_functions.add(function_id)

    def is_livesafe(self, function_id: int) -> bool:
        return function_id in self.livesafe_functions

    # -- synonyms (union-find) ---------------------------------------------------

    def _find(self, descriptor: DataDescriptor) -> DataDescriptor:
        parent = self._synonym_parent.get(descriptor)
        if parent is None or parent == descriptor:
            return descriptor
        root = self._find(parent)
        self._synonym_parent[descriptor] = root
        return root

    def add_synonym(self, a: DataDescriptor, b: DataDescriptor) -> None:
        """Record ``Synonymous(a, b)``."""
        root_a, root_b = self._find(a), self._find(b)
        if root_a != root_b:
            self._synonym_parent[root_b] = root_a
        else:
            self._synonym_parent.setdefault(a, root_a)
            self._synonym_parent.setdefault(b, root_a)
        # Make sure both descriptors are registered for enumeration.
        self._synonym_parent.setdefault(a, root_a)
        self._synonym_parent.setdefault(b, root_a)

    def are_synonymous(self, a: DataDescriptor, b: DataDescriptor) -> bool:
        if a == b:
            return True
        if a not in self._synonym_parent or b not in self._synonym_parent:
            return False
        return self._find(a) == self._find(b)

    def plain_synonyms_of(self, value_id: int) -> list[int]:
        """All *other* plain ids recorded synonymous with *value_id*."""
        me = plain(value_id)
        if me not in self._synonym_parent:
            return []
        root = self._find(me)
        return sorted(
            d.object_id
            for d in self._synonym_parent
            if d.is_plain and d.object_id != value_id and self._find(d) == root
        )

    def indexed_synonym_targets(self) -> list[DataDescriptor]:
        """All indexed descriptors known to the synonym relation."""
        return [d for d in self._synonym_parent if not d.is_plain]

    def known_descriptors(self) -> list[DataDescriptor]:
        return list(self._synonym_parent)

    # -- maintenance ------------------------------------------------------------

    def clone(self) -> "FactManager":
        """An independent copy of the fact set (descriptors are immutable, so
        shallow container copies suffice)."""
        return FactManager(
            dead_blocks=set(self.dead_blocks),
            irrelevant_ids=set(self.irrelevant_ids),
            irrelevant_uses=set(self.irrelevant_uses),
            irrelevant_pointees=set(self.irrelevant_pointees),
            livesafe_functions=set(self.livesafe_functions),
            _synonym_parent=dict(self._synonym_parent),
        )

    def forget_ids(self, ids: set[int]) -> None:
        """Drop facts mentioning removed ids (defensive; rarely needed because
        transformations only ever add program elements)."""
        self.dead_blocks -= ids
        self.irrelevant_ids -= ids
        self.irrelevant_pointees -= ids
        self.livesafe_functions -= ids
        self.irrelevant_uses = {
            (inst, k) for inst, k in self.irrelevant_uses if inst not in ids
        }
        doomed = [d for d in self._synonym_parent if d.object_id in ids]
        if doomed:
            survivors = [
                (a, b)
                for a in self._synonym_parent
                for b in self._synonym_parent
                if a != b
                and a.object_id not in ids
                and b.object_id not in ids
                and self._find(a) == self._find(b)
            ]
            self._synonym_parent = {}
            for a, b in survivors:
                self.add_synonym(a, b)
