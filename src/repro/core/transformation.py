"""The transformation protocol (Definition 2.4) and sequence application
(Definition 2.5).

A transformation is ``(Type, Pre, Effect)``.  Concretely each transformation
is a dataclass with:

* a class-level ``type_name`` (the *Type* component, used by deduplication),
* ``precondition(ctx)`` — a total predicate over contexts,
* ``apply(ctx)`` — the effect; only called when the precondition holds, and
  guaranteed to keep the module valid and semantics-preserving,
* JSON round-tripping (the project's stand-in for spirv-fuzz's protobufs),
  so transformation sequences are replayable without the fuzzer state or the
  donor corpus.

``apply_sequence`` implements Definition 2.5: preconditions that fail cause
the transformation to be *skipped*, which is what makes delta debugging over
subsequences sound.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, ClassVar, Iterable

from repro.core.context import Context

#: Registry of transformation classes keyed by type name.
TRANSFORMATION_REGISTRY: dict[str, type["Transformation"]] = {}

#: Transformation types ignored by deduplication (§3.5): supporting
#: transformations for types/constants/variables, enablers (SplitBlock,
#: AddFunction) and ReplaceIdWithSynonym, which reaps the benefits of earlier
#: transformations without being interesting in isolation.  Fixed before any
#: experiments, as in the paper.
SUPPORTING_TYPES: frozenset[str] = frozenset(
    {
        "AddType",
        "AddConstant",
        "AddVariable",
        "AddUniform",
        "SplitBlock",
        "AddFunction",
        "ReplaceIdWithSynonym",
    }
)


class Transformation(abc.ABC):
    """Base class for all transformations."""

    type_name: ClassVar[str]

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        name = getattr(cls, "type_name", None)
        if name:
            existing = TRANSFORMATION_REGISTRY.get(name)
            if existing is not None and existing is not cls:
                raise TypeError(f"duplicate transformation type {name!r}")
            TRANSFORMATION_REGISTRY[name] = cls

    @abc.abstractmethod
    def precondition(self, ctx: Context) -> bool:
        """The *Pre* predicate.  Must be total and side-effect-free."""

    @abc.abstractmethod
    def apply(self, ctx: Context) -> None:
        """The *Effect*.  Only called when ``precondition`` held; must keep
        the module valid and preserve ``Semantics(P, I)``."""

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict[str, Any]:
        record: dict[str, Any] = {"type": self.type_name}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            record[field.name] = _encode(getattr(self, field.name))
        return record

    @classmethod
    def from_json(cls, record: dict[str, Any]) -> "Transformation":
        klass = TRANSFORMATION_REGISTRY[record["type"]]
        kwargs = {}
        for field in dataclasses.fields(klass):  # type: ignore[arg-type]
            if field.name in record:
                kwargs[field.name] = _decode(record[field.name])
        return klass(**kwargs)  # type: ignore[call-arg]


def _encode(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in value.items()}
    return value


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        return {_intkey(k): _decode(v) for k, v in value.items()}
    return value


def _intkey(key: str) -> Any:
    try:
        return int(key)
    except (TypeError, ValueError):
        return key


def apply_sequence(
    ctx: Context,
    transformations: Iterable[Transformation],
    *,
    validate_each: bool = False,
) -> list[bool]:
    """Apply a sequence per Definition 2.5, skipping failed preconditions.

    Returns one flag per transformation recording whether it applied.  With
    ``validate_each`` the module is validated after every application (slow;
    used by tests to certify that effects preserve validity).
    """
    from repro.ir.validator import validate

    applied: list[bool] = []
    for transformation in transformations:
        if transformation.precondition(ctx):
            transformation.apply(ctx)
            ctx.invalidate()
            if validate_each:
                errors = validate(ctx.module)
                if errors:
                    raise AssertionError(
                        f"{transformation.type_name} broke the module: "
                        f"{errors[:3]} (transformation: {transformation.to_json()})"
                    )
            applied.append(True)
        else:
            applied.append(False)
    return applied


def sequence_to_json(transformations: Iterable[Transformation]) -> list[dict[str, Any]]:
    return [t.to_json() for t in transformations]


def sequence_from_json(records: Iterable[dict[str, Any]]) -> list[Transformation]:
    return [Transformation.from_json(r) for r in records]


def effective_types(transformations: Iterable[Transformation]) -> frozenset[str]:
    """Transformation-type set of a test case minus the ignore list (the
    ``types(t)`` of Figure 6 after the §3.5 refinement)."""
    return frozenset(
        t.type_name for t in transformations if t.type_name not in SUPPORTING_TYPES
    )
