"""Transformation contexts (Definition 2.3): ``(P, I, F)`` plus analysis
caches that are invalidated after every applied transformation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.facts import FactManager
from repro.ir import types as tys
from repro.ir.analysis.cfg import Availability, Cfg
from repro.ir.builder import ModuleBuilder
from repro.ir.module import Function, Instruction, Module


@dataclass
class Context:
    """A transformation context.

    ``module`` is mutated in place by transformation effects; ``inputs`` is
    the fixed input binding (spirv-fuzz leaves inputs unchanged, and so do
    we); ``facts`` is the fact set F.
    """

    module: Module
    inputs: dict[str, object] = field(default_factory=dict)
    facts: FactManager = field(default_factory=FactManager)
    _defs: dict[int, Instruction] | None = field(default=None, repr=False)
    _types: dict[int, tys.Type] | None = field(default=None, repr=False)
    _availability: dict[int, Availability] = field(default_factory=dict, repr=False)
    _cfgs: dict[int, Cfg] = field(default_factory=dict, repr=False)

    @classmethod
    def start(cls, module: Module, inputs: dict[str, object] | None = None) -> "Context":
        """Fresh context over a *clone* of *module* with an empty fact set."""
        return cls(module.clone(), dict(inputs or {}))

    def clone(self) -> "Context":
        """An independent snapshot of ``(P, I, F)``.

        Analysis caches are *not* carried over — they would alias the old
        module — so the clone rebuilds them lazily.  Input values are scalars
        that transformations assign (never mutate in place), so a shallow
        dict copy is faithful.
        """
        return Context(self.module.clone(), dict(self.inputs), self.facts.clone())

    # -- caches -------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop analysis caches; call after any module mutation."""
        self.module.touch()
        self._defs = None
        self._types = None
        self._availability.clear()
        self._cfgs.clear()

    def defs(self) -> dict[int, Instruction]:
        if self._defs is None:
            self._defs = self.module.def_map()
        return self._defs

    def types(self) -> dict[int, tys.Type]:
        if self._types is None:
            self._types = self.module.type_table()
        return self._types

    def availability(self, function: Function) -> Availability:
        cached = self._availability.get(function.result_id)
        if cached is None:
            cached = Availability(self.module, function)
            self._availability[function.result_id] = cached
        return cached

    def cfg(self, function: Function) -> Cfg:
        cached = self._cfgs.get(function.result_id)
        if cached is None:
            cached = Cfg.build(function)
            self._cfgs[function.result_id] = cached
        return cached

    def builder(self) -> ModuleBuilder:
        return ModuleBuilder.wrap(self.module)

    # -- common queries ------------------------------------------------------------

    def is_fresh(self, candidate: int) -> bool:
        return candidate >= 1 and candidate not in self.defs()

    def all_fresh_distinct(self, ids: list[int]) -> bool:
        return len(set(ids)) == len(ids) and all(self.is_fresh(i) for i in ids)

    def value_type(self, value_id: int) -> tys.Type | None:
        inst = self.defs().get(value_id)
        if inst is None or inst.type_id is None:
            return None
        return self.types().get(inst.type_id)

    def known_true_ids(self) -> list[int]:
        """Ids of ``OpConstantTrue`` declarations."""
        from repro.ir.opcodes import Op

        return [
            inst.result_id
            for inst in self.module.global_insts
            if inst.opcode is Op.ConstantTrue and inst.result_id is not None
        ]

    def known_false_ids(self) -> list[int]:
        from repro.ir.opcodes import Op

        return [
            inst.result_id
            for inst in self.module.global_insts
            if inst.opcode is Op.ConstantFalse and inst.result_id is not None
        ]
