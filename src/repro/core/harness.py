"""The testing harness (gfauto analogue, §3.2/§3.4).

Orchestrates the full loop of Figure 1: fuzz a reference program into a
variant, run original and variant on each target, flag crashes / invalid IR
/ result mismatches, and construct interestingness tests so the reducer can
shrink bug-inducing transformation sequences.

Per the paper's flow, when the unoptimized variant triggers nothing, the
harness optimizes it with the clean ``spirv-opt -O`` analogue and tests
again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compilers.base import FAULT_KINDS, OutcomeKind, TargetOutcome
from repro.compilers.pipeline import Target, optimize
from repro.core.fuzzer import Fuzzer, FuzzerOptions
from repro.core.reducer import (
    InterestingnessTest,
    ReductionResult,
    reduce_transformations,
    replay,
)
from repro.core.signature import (
    MISCOMPILATION_SIGNATURE,
    crash_signature,
    invalid_ir_signature,
    resource_signature,
    timeout_signature,
    worker_crash_signature,
)
from repro.core.transformation import Transformation, effective_types
from repro.corpus.generator import CorpusProgram
from repro.ir.module import Module
from repro.observability import Metrics, as_tracer


@dataclass
class Finding:
    """One bug-indicating test case discovered by the harness."""

    target_name: str
    program_name: str
    seed: int
    signature: str
    kind: str  # "crash" | "invalid-ir" | "miscompilation" |
    #           "timeout" | "resource" | "worker-crash" (supervised probes)
    optimized_flow: bool
    transformations: list[Transformation]
    original: Module
    inputs: dict
    ground_truth_bug: str | None = None
    #: Set when verdict-stability reruns (RobustnessConfig.retries) observed
    #: a different classification for the same probe — deduplication keeps
    #: such findings apart from stable bugs.
    nondeterministic: bool = False

    @property
    def is_crash(self) -> bool:
        return self.kind == "crash"


def _chain_attr(target: "object", attr: str):
    """First non-``None`` *attr* along a target's wrapper chain.

    Probe targets stack wrappers (caching, supervision, delay doubles); this
    walks ``.target`` / ``._target`` links with a cycle guard, so callers
    need not know the stacking order.
    """
    seen: set[int] = set()
    current = target
    while current is not None and id(current) not in seen:
        value = getattr(current, attr, None)
        if value is not None and not callable(value):
            return value
        seen.add(id(current))
        current = getattr(current, "target", None) or getattr(
            current, "_target", None
        )
    return None


#: Supervision fault kinds mapped to (finding kind, signature builder).
_FAULT_CLASSIFICATION = {
    OutcomeKind.TIMEOUT: ("timeout", timeout_signature),
    OutcomeKind.RESOURCE: ("resource", resource_signature),
    OutcomeKind.WORKER_CRASH: ("worker-crash", worker_crash_signature),
}


def classify_outcome(
    outcome: TargetOutcome, reference: TargetOutcome
) -> tuple[str, str, str | None] | None:
    """Compare a variant outcome against the original's outcome on the same
    target; return (signature, kind, ground-truth bug id) for a finding."""
    if reference.kind in FAULT_KINDS:
        # The *reference* run itself misbehaved under supervision; nothing
        # observed on the variant can be attributed to the transformations.
        return None
    if outcome.kind in FAULT_KINDS:
        kind, signature_for = _FAULT_CLASSIFICATION[outcome.kind]
        return signature_for(outcome.crash_message), kind, outcome.bug_id
    if outcome.kind is OutcomeKind.CRASH:
        signature = crash_signature(outcome.crash_message)
        if (
            reference.kind is OutcomeKind.CRASH
            and crash_signature(reference.crash_message) == signature
        ):
            return None  # pre-existing crash, not variant-induced
        return signature, "crash", outcome.bug_id
    if outcome.kind is OutcomeKind.INVALID:
        signature = invalid_ir_signature(outcome.validation_errors)
        if (
            reference.kind is OutcomeKind.INVALID
            and invalid_ir_signature(reference.validation_errors) == signature
        ):
            return None
        return signature, "invalid-ir", outcome.bug_id
    if (
        reference.kind is OutcomeKind.OK
        and reference.result is not None
        and outcome.result is not None
    ):
        if not reference.result.agrees_with(outcome.result):
            # A mismatch arises when a miscompilation bug fired *differently*
            # on variant and original, so attribute via symmetric difference.
            fired = sorted(
                outcome.fired_miscompile_bugs ^ reference.fired_miscompile_bugs
            )
            ground_truth = fired[0] if fired else None
            return MISCOMPILATION_SIGNATURE, "miscompilation", ground_truth
    return None


@dataclass
class SeedRun:
    """Everything observed while testing one fuzzed variant."""

    program_name: str
    seed: int
    transformation_count: int
    findings: list[Finding] = field(default_factory=list)
    #: Targets skipped because they were quarantined when this seed ran.
    skipped_targets: tuple[str, ...] = ()
    #: Supervision faults observed during this seed: (target, fault kind).
    #: Journaled so a resumed campaign restores quarantine accounting.
    faults: tuple[tuple[str, str], ...] = ()


@dataclass
class CampaignResult:
    findings: list[Finding] = field(default_factory=list)
    seed_runs: list[SeedRun] = field(default_factory=list)
    #: Targets quarantined during the campaign, with a reason each.
    quarantined: dict[str, str] = field(default_factory=dict)

    def signatures_for_target(self, target_name: str) -> set[str]:
        return {
            f.signature for f in self.findings if f.target_name == target_name
        }

    def all_signatures(self) -> set[tuple[str, str]]:
        """(target, signature) pairs — distinct bug signatures overall."""
        return {(f.target_name, f.signature) for f in self.findings}


class Harness:
    """Runs fuzzing campaigns and builds interestingness tests."""

    def __init__(
        self,
        targets: Sequence[Target],
        references: Sequence[CorpusProgram],
        donors: Sequence[CorpusProgram] = (),
        options: FuzzerOptions | None = None,
        *,
        optimized_flow: bool = True,
        robustness: "object | None" = None,
        tracer: "object | None" = None,
        metrics: Metrics | None = None,
        probe_cache: "bool | object" = False,
        batch_probes: bool = False,
    ) -> None:
        from repro.robustness import QuarantineTracker, supervise_targets

        #: Event bus for structured tracing (``None`` -> the no-op tracer;
        #: campaign results are byte-identical either way).
        self.tracer = as_tracer(tracer)
        #: Always-on counter/timing registry; ``run_campaign`` folds worker
        #: registries into this one through the shard-merge path.
        self.metrics = metrics if metrics is not None else Metrics()
        self.robustness = robustness  # a RobustnessConfig, or None
        self.targets = (
            supervise_targets(targets, robustness, tracer=self.tracer)
            if robustness is not None
            else list(targets)
        )
        #: Opt-in content-hash probe cache (``True`` or a ProbeCache
        #: instance).  Incompatible with verdict-stability retries — a cached
        #: re-probe could never observe flakiness — so retries win and the
        #: cache is disabled with a traced reason.
        self.probe_cache = None
        if probe_cache:
            if robustness is not None and robustness.retries > 0:
                self.metrics.inc("probe_cache.disabled")
                self.tracer.emit(
                    "probe_cache.disabled",
                    reason="verdict-stability-retries",
                )
            else:
                from repro.perf.probe_cache import CachingTarget, ProbeCache

                self.probe_cache = (
                    probe_cache
                    if isinstance(probe_cache, ProbeCache)
                    else ProbeCache()
                )
                self.targets = [
                    CachingTarget(t, self.probe_cache) for t in self.targets
                ]
        if self.probe_cache is not None:
            from repro.perf.probe_cache import CachedOptimizer

            self._optimize = CachedOptimizer(self.probe_cache)
        else:
            self._optimize = optimize
        self.batch_probes = batch_probes
        self._probe_cache_shipped: dict[str, int] = {}
        self._probe_cache_emitted: dict[str, int] = {}
        self.references = list(references)
        self.donors = list(donors)
        options = options or FuzzerOptions()
        if robustness is not None and robustness.recover_effect_errors:
            from dataclasses import replace as dc_replace

            if not options.recover_effect_errors:
                options = dc_replace(options, recover_effect_errors=True)
        self.options = options
        self.fuzzer = Fuzzer(self.donors, self.options)
        self.optimized_flow = optimized_flow
        self.quarantine = QuarantineTracker(
            robustness.quarantine_after if robustness is not None else None
        )
        #: Decorrelated jitter for verdict-stability reruns (seeded, so a
        #: rebuilt harness sleeps the same sequence); ``None`` keeps the
        #: deterministic exponential backoff.
        self._retry_jitter = None
        if robustness is not None and robustness.retry_jitter_seed is not None:
            from repro.robustness.retry import DecorrelatedJitter

            self._retry_jitter = DecorrelatedJitter(
                robustness.retry_backoff, seed=robustness.retry_jitter_seed
            )
        self._reference_outcomes: dict[tuple[str, str], TargetOutcome] = {}
        self._fault_log: list[tuple[str, str]] | None = None

    def close(self) -> None:
        """Shut down any supervised probe workers (idempotent)."""
        from repro.robustness import close_targets

        close_targets(self.targets)

    def _probe(self, target: Target, module: Module, inputs: dict) -> TargetOutcome:
        """One probe, with quarantine fault accounting and instrumentation."""
        started = time.perf_counter()
        outcome = target.run(module, inputs)
        self.metrics.observe("probe_seconds", time.perf_counter() - started)
        self.metrics.inc("probes")
        self.tracer.emit(
            "probe", target=target.name, outcome=outcome.kind.value
        )
        self._note_fault(target, outcome)
        return outcome

    def _probe_batch(self, target: Target, items: list) -> list[TargetOutcome]:
        """Like :meth:`_probe` for a window of ``(module, inputs)`` probes —
        one supervised round-trip, same per-probe accounting."""
        from repro.perf.batch import ProbeBatch

        started = time.perf_counter()
        outcomes = ProbeBatch(target, metrics=self.metrics).run(items)
        self.metrics.observe("probe_seconds", time.perf_counter() - started)
        for outcome in outcomes:
            self.metrics.inc("probes")
            self.tracer.emit(
                "probe", target=target.name, outcome=outcome.kind.value
            )
            self._note_fault(target, outcome)
        return outcomes

    def _note_fault(self, target: Target, outcome: TargetOutcome) -> None:
        """Quarantine/fault accounting shared by single and batched probes."""
        if not outcome.is_fault:
            return
        kind = outcome.kind.value
        self.metrics.inc("faults")
        self.metrics.inc(f"faults.{kind}")
        self.tracer.emit("fault", target=target.name, kind=kind)
        quarantined_before = self.quarantine.is_quarantined(target.name)
        self.quarantine.record_fault(target.name, outcome)
        if self._fault_log is not None:
            self._fault_log.append((target.name, kind))
        if not quarantined_before and self.quarantine.is_quarantined(
            target.name
        ):
            self.metrics.inc("quarantines")
            self.tracer.emit(
                "quarantine",
                target=target.name,
                reason=self.quarantine.report().get(target.name, ""),
            )

    # -- probe-cache accounting ------------------------------------------------------

    def _sync_probe_cache_metrics(self) -> None:
        """Ship probe-cache stat deltas into the metrics registry.

        Called at the end of every seed, so in parallel campaigns the
        counters ride the existing per-shard metrics drain back to the
        parent.
        """
        if self.probe_cache is None:
            return
        current = self.probe_cache.stats.to_json()
        for name, value in current.items():
            delta = value - self._probe_cache_shipped.get(name, 0)
            if delta:
                self.metrics.inc(f"probe_cache.{name}", delta)
        self._probe_cache_shipped = current

    def _probe_cache_event_delta(self) -> dict | None:
        """Probe-cache counters accrued since the last emitted event.

        Events carry *deltas* (not cumulative totals) so a report summing
        several ``campaign.end`` / ``reduce.end`` records counts each probe
        once.
        """
        if self.probe_cache is None:
            return None
        self._sync_probe_cache_metrics()
        current = self.probe_cache.stats.to_json()
        delta = {
            name: value - self._probe_cache_emitted.get(name, 0)
            for name, value in current.items()
        }
        self._probe_cache_emitted = current
        if not any(delta.values()):
            return None
        return delta

    def reference_outcome(self, target: Target, program: CorpusProgram) -> TargetOutcome:
        # Reference probes bypass quarantine *accounting*: they are cached per
        # (target, program), so whether one re-runs depends on process history
        # (a resumed campaign re-probes; an uninterrupted one hits the cache).
        # Counting them would make checkpoint/resume diverge from an
        # uninterrupted run.  Variant probes, which recur every seed, carry
        # the fault budget instead.
        key = (target.name, program.name)
        cached = self._reference_outcomes.get(key)
        if cached is None:
            cached = target.run(program.module, program.inputs)
            self._reference_outcomes[key] = cached
            self.metrics.inc("reference_probes")
            self.tracer.emit(
                "probe",
                target=target.name,
                outcome=cached.kind.value,
                reference=True,
                program=program.name,
            )
        return cached

    # -- one seed ---------------------------------------------------------------

    def run_seed(self, seed: int, program: CorpusProgram | None = None) -> SeedRun:
        """Fuzz one variant and test it on every target (Figure 1)."""
        if program is None:
            program = self.references[seed % len(self.references)]
        self.tracer.emit("seed.begin", seed=seed, program=program.name)
        seed_started = time.perf_counter()
        fuzzed = self.fuzzer.run(program.module, program.inputs, seed)
        run = SeedRun(program.name, seed, len(fuzzed.transformations))
        variant = fuzzed.variant
        # Transformations may extend the input in sync with the module
        # (AddUniform); the variant runs on its own input binding.
        variant_inputs = fuzzed.context.inputs
        optimized_variant: Module | None = None
        skipped: list[str] = []
        faults: list[tuple[str, str]] = []
        self._fault_log = faults
        try:
            for target in self.targets:
                if self.quarantine.is_quarantined(target.name):
                    skipped.append(target.name)
                    self.metrics.inc("skipped_probes")
                    self.tracer.emit(
                        "probe.skipped", seed=seed, target=target.name
                    )
                    continue
                reference = self.reference_outcome(target, program)
                optimized_flow = False
                if (
                    self.batch_probes
                    and self.optimized_flow
                    and hasattr(target, "run_batch")
                ):
                    # One supervised round-trip carries both flows.  The
                    # optimized probe is computed eagerly (serial probes it
                    # lazily), but classification order is unchanged, so the
                    # findings are byte-identical for deterministic targets.
                    if optimized_variant is None:
                        optimized_variant = self._optimize(variant)
                    outcomes = self._probe_batch(
                        target,
                        [
                            (variant, variant_inputs),
                            (optimized_variant, variant_inputs),
                        ],
                    )
                    outcome = outcomes[0]
                    classified = classify_outcome(outcome, reference)
                    if classified is None:
                        outcome = outcomes[1]
                        classified = classify_outcome(outcome, reference)
                        optimized_flow = True
                else:
                    outcome = self._probe(target, variant, variant_inputs)
                    classified = classify_outcome(outcome, reference)
                    if classified is None and self.optimized_flow:
                        if optimized_variant is None:
                            optimized_variant = self._optimize(variant)
                        outcome = self._probe(
                            target, optimized_variant, variant_inputs
                        )
                        classified = classify_outcome(outcome, reference)
                        optimized_flow = True
                if classified is None:
                    continue
                signature, kind, ground_truth = classified
                nondeterministic = False
                if self.robustness is not None and self.robustness.retries > 0:
                    from repro.robustness import verdict_is_stable

                    probed = optimized_variant if optimized_flow else variant
                    nondeterministic = not verdict_is_stable(
                        lambda: self._probe(target, probed, variant_inputs),
                        lambda o: classify_outcome(o, reference),
                        (signature, kind),
                        retries=self.robustness.retries,
                        backoff=self.robustness.retry_backoff,
                        jitter=self._retry_jitter,
                    )
                    self.metrics.inc("retries")
                    if nondeterministic:
                        self.metrics.inc("retries.unstable")
                    self.tracer.emit(
                        "retry",
                        seed=seed,
                        target=target.name,
                        stable=not nondeterministic,
                    )
                self.metrics.inc("findings")
                self.metrics.inc(f"findings.{kind}")
                self.tracer.emit(
                    "finding",
                    seed=seed,
                    target=target.name,
                    kind=kind,
                    signature=signature,
                    optimized_flow=optimized_flow,
                    nondeterministic=nondeterministic,
                    # The Figure 6 type set, so trace files are a
                    # streamable dedup input (see dedup_scale).
                    types=sorted(effective_types(fuzzed.transformations)),
                )
                run.findings.append(
                    Finding(
                        target_name=target.name,
                        program_name=program.name,
                        seed=seed,
                        signature=signature,
                        kind=kind,
                        optimized_flow=optimized_flow,
                        transformations=list(fuzzed.transformations),
                        original=program.module,
                        inputs=dict(program.inputs),
                        ground_truth_bug=ground_truth,
                        nondeterministic=nondeterministic,
                    )
                )
        finally:
            self._fault_log = None
        run.skipped_targets = tuple(skipped)
        run.faults = tuple(faults)
        self._sync_probe_cache_metrics()
        self.metrics.inc("seeds")
        self.metrics.observe("seed_seconds", time.perf_counter() - seed_started)
        self.tracer.emit(
            "seed.end",
            seed=seed,
            program=program.name,
            transformations=run.transformation_count,
            findings=len(run.findings),
            faults=len(faults),
            dur_s=round(time.perf_counter() - seed_started, 6),
        )
        return run

    def run_campaign(
        self,
        seeds: Sequence[int],
        *,
        workers: int = 1,
        spec: "object | None" = None,
        journal: "object | None" = None,
        resume: bool = False,
        progress: Callable[[SeedRun], None] | None = None,
        degrade: bool = True,
    ) -> CampaignResult:
        """Run every seed through :meth:`run_seed`.

        With ``workers > 1`` seeds are sharded across a process pool (see
        :mod:`repro.perf.parallel`); results are merged back in seed order so
        they are byte-identical to the serial path.  ``workers=1`` is exactly
        the original serial loop.  *spec* overrides the automatically derived
        :class:`~repro.perf.parallel.CampaignSpec` (needed only for harnesses
        over non-standard corpora/targets).

        *degrade* (default on) drops ``workers`` to 1 — with a traced
        ``parallel.degraded`` reason — when sharding cannot win: a single
        CPU with no supervised probe latency to hide, or fewer than two
        pending seeds.  Results are identical either way (the parallel path
        is byte-identical by construction); only the wall clock differs.
        Pass ``degrade=False`` to force the sharded path, e.g. to test it.

        *journal* (a path or :class:`~repro.robustness.CampaignJournal`)
        appends one JSONL record per completed seed; with ``resume=True``
        already-journaled seeds are replayed from the journal instead of
        re-fuzzed, so an interrupted campaign — even one killed mid-seed —
        finishes with a result identical to an uninterrupted run.

        *progress* is invoked once per freshly computed :class:`SeedRun`
        (per seed when serial, per collected shard when parallel) — the
        CLI's live progress line.  It observes results that are already
        final, so it cannot change them.
        """
        seeds = list(seeds)
        done: dict[int, SeedRun] = {}
        if journal is not None and not hasattr(journal, "append"):
            from repro.robustness import CampaignJournal

            journal = CampaignJournal(journal)
        if journal is not None and resume:
            references_by_name = {p.name: p for p in self.references}
            done = journal.load(references_by_name)
            done = {seed: run for seed, run in done.items() if seed in set(seeds)}
            # Restore quarantine accounting for the seeds we are skipping.
            for seed in sorted(done):
                for target_name, kind in done[seed].faults:
                    self.quarantine.record_fault_kind(target_name, kind)
        pending = [seed for seed in seeds if seed not in done]
        if workers > 1 and degrade:
            reason = self._parallel_degrade_reason(len(pending))
            if reason is not None:
                self.metrics.inc("parallel.degraded")
                self.tracer.emit(
                    "parallel.degraded", reason=reason, workers=workers
                )
                workers = 1
        self.tracer.emit(
            "campaign.begin",
            seeds=len(seeds),
            pending=len(pending),
            resumed=len(done),
            workers=workers,
            targets=[t.name for t in self.targets],
        )
        campaign_started = time.perf_counter()

        computed: dict[int, SeedRun] = {}
        if workers == 1:
            for seed in pending:
                run = self.run_seed(seed)
                computed[seed] = run
                if journal is not None:
                    journal.append(run)
                if progress is not None:
                    progress(run)
        elif pending:
            from repro.perf.parallel import ParallelExecutor

            executor = ParallelExecutor(workers)

            def on_shard(runs: list) -> None:
                if journal is not None:
                    journal.append_runs(runs)
                if progress is not None:
                    for run in runs:
                        progress(run)

            runs = executor.run_seed_shards(
                spec or self.campaign_spec(), pending, on_shard_result=on_shard
            )
            computed = dict(zip(pending, runs))
            # Workers quarantine independently; fold their fault observations
            # into the parent tracker so the final report covers them.  Their
            # metric registries come back the same way, via per-shard drains.
            for run in runs:
                for target_name, kind in run.faults:
                    self.quarantine.record_fault_kind(target_name, kind)
            self.metrics.merge(executor.metrics)

        result = CampaignResult()
        for seed in seeds:
            run = done.get(seed) or computed[seed]
            result.seed_runs.append(run)
            result.findings.extend(run.findings)
        result.quarantined = self.quarantine.report()
        extra: dict = {}
        cache_delta = self._probe_cache_event_delta()
        if cache_delta is not None:
            extra["probe_cache"] = cache_delta
        batch_delta = self._probe_batch_event_delta()
        if batch_delta is not None:
            extra["probe_batch"] = batch_delta
        self.tracer.emit(
            "campaign.end",
            seeds=len(seeds),
            findings=len(result.findings),
            quarantined=sorted(result.quarantined),
            dur_s=round(time.perf_counter() - campaign_started, 6),
            **extra,
        )
        return result

    def _parallel_degrade_reason(self, pending_count: int) -> str | None:
        """Why sharding this campaign across processes cannot pay off."""
        import os

        if pending_count and pending_count < 2:
            return "tiny-seed-count"
        if (os.cpu_count() or 1) == 1 and not any(
            _chain_attr(t, "probe_delay") for t in self.targets
        ):
            # One CPU and purely compute-bound probes: worker processes just
            # time-slice the same core and pay fork + merge overhead on top.
            return "single-cpu-no-probe-latency-to-hide"
        return None

    def _probe_batch_event_delta(self) -> dict | None:
        """Batch counters accrued since the last emitted event (see
        :meth:`_probe_cache_event_delta` for the delta discipline)."""
        if not self.batch_probes:
            return None
        current = {
            name: self.metrics.counter(name)
            for name in ("probe_batch.batches", "probe_batch.probes")
        }
        emitted = getattr(self, "_probe_batch_emitted", {})
        delta = {
            name.split(".", 1)[1]: value - emitted.get(name, 0)
            for name, value in current.items()
        }
        self._probe_batch_emitted = current
        if not any(delta.values()):
            return None
        return delta

    def campaign_spec(self) -> "object":
        """A picklable spec that rebuilds this harness in a worker process."""
        from repro.compilers import make_target
        from repro.corpus import donor_programs, reference_programs
        from repro.perf.parallel import CampaignSpec, spec_names_for

        for target in self.targets:
            make_target(target.name)  # raises KeyError for non-Table-2 targets
        trace_path = getattr(self.tracer, "path", None)
        return CampaignSpec(
            kind="core",
            target_names=tuple(t.name for t in self.targets),
            reference_names=spec_names_for(self.references, reference_programs),
            donor_names=spec_names_for(self.donors, donor_programs),
            options=self.options,
            optimized_flow=self.optimized_flow,
            robustness=self.robustness,
            # Workers append to the same trace file (O_APPEND line atomicity).
            trace=str(trace_path) if trace_path is not None else None,
            probe_cache=self.probe_cache is not None,
            batch_probes=self.batch_probes,
        )

    # -- reduction support ---------------------------------------------------------

    def make_interestingness_test(
        self, finding: Finding, *, replayer: "object | None" = None
    ) -> InterestingnessTest:
        """A script-equivalent predicate: does a candidate transformation
        subsequence still trigger this finding's bug on its target?

        With a :class:`~repro.perf.replay_cache.CachedReplayer` bound to the
        finding, candidate replays reuse prefix snapshots and verdicts are
        memoized — results stay byte-identical to the uncached predicate.
        """
        target = next(t for t in self.targets if t.name == finding.target_name)
        reference = target.run(finding.original, finding.inputs)
        if replayer is not None:
            replay_candidate = replayer.replay
        else:
            def replay_candidate(candidate: Sequence[Transformation]):
                return replay(finding.original, finding.inputs, candidate)

        def is_interesting(candidate: Sequence[Transformation]) -> bool:
            ctx = replay_candidate(candidate)
            variant = ctx.module
            if finding.optimized_flow:
                variant = self._optimize(variant)
            # ctx.inputs reflects any input-extending transformations that
            # survived into the candidate.
            outcome = target.run(variant, ctx.inputs)
            classified = classify_outcome(outcome, reference)
            if classified is None:
                return False
            signature, kind, _ = classified
            return kind == finding.kind and signature == finding.signature

        if replayer is not None:
            from repro.perf.replay_cache import CachedInterestingness

            return CachedInterestingness(replayer, is_interesting)
        return is_interesting

    def make_probe_test(
        self, finding: Finding, *, replayer: "object | None" = None
    ):
        """Like :meth:`make_interestingness_test`, but fault-aware: returns a
        verdict test mapping candidates to :class:`~repro.robustness.
        ProbeVerdict` for the fault-tolerant reducer.

        A probe whose target outcome is a supervision fault (timeout / OOM /
        worker death) that is *not* the finding's own bug kind reports the
        fault instead of a clean ``False`` — the pipeline retries it and,
        once the fault budget is spent, treats it as "not interesting" (never
        acceptance).  Reducing a fault-kind finding (e.g. a genuine
        ``timeout`` bug) still classifies normally: there the fault *is* the
        signal.

        No verdict memoization is layered here even when a *replayer* is
        given — caching a faulted probe would defeat the retry policy.  The
        :class:`~repro.robustness.FlakeHardenedOracle` memoizes final
        *decisions* by candidate content instead, and counts its queries into
        the replayer's :class:`~repro.perf.replay_cache.ReplayStats`.
        """
        from repro.robustness import ProbeVerdict

        target = next(t for t in self.targets if t.name == finding.target_name)
        reference = target.run(finding.original, finding.inputs)
        if replayer is not None:
            replay_candidate = replayer.replay
        else:
            def replay_candidate(candidate: Sequence[Transformation]):
                return replay(finding.original, finding.inputs, candidate)

        def probe_test(candidate: Sequence[Transformation]) -> "ProbeVerdict":
            ctx = replay_candidate(candidate)
            variant = ctx.module
            if finding.optimized_flow:
                variant = self._optimize(variant)
            outcome = target.run(variant, ctx.inputs)
            if outcome.kind in FAULT_KINDS:
                fault_kind = _FAULT_CLASSIFICATION[outcome.kind][0]
                if finding.kind != fault_kind:
                    return ProbeVerdict(False, fault=outcome.kind.value)
            classified = classify_outcome(outcome, reference)
            if classified is None:
                return ProbeVerdict(False)
            signature, kind, _ = classified
            return ProbeVerdict(
                kind == finding.kind and signature == finding.signature
            )

        return probe_test

    def finding_probe_spec(
        self,
        finding: Finding,
        *,
        use_cache: bool = True,
        decide: bool = False,
        policy: "object | None" = None,
    ) -> "object":
        """A picklable spec that rebuilds this finding's interestingness
        probe inside a reduction-pool worker (see :class:`~repro.perf.
        reduce_pool.FindingProbeSpec`).  Raises for targets or corpus
        programs a worker could not rebuild by name."""
        import json as json_mod

        from repro.compilers import make_target
        from repro.core.transformation import sequence_to_json
        from repro.corpus import reference_programs
        from repro.perf.reduce_pool import FindingProbeSpec

        make_target(finding.target_name)  # raises KeyError for unknown targets
        if finding.program_name not in {p.name for p in reference_programs()}:
            raise ValueError(
                f"program {finding.program_name!r} is not in the standard "
                "corpus; parallel reduction workers cannot rebuild it by name"
            )
        target = next(t for t in self.targets if t.name == finding.target_name)
        probe_delay = _chain_attr(target, "probe_delay")
        return FindingProbeSpec(
            target_name=finding.target_name,
            program_name=finding.program_name,
            transformations_json=json_mod.dumps(
                sequence_to_json(finding.transformations)
            ),
            signature=finding.signature,
            kind=finding.kind,
            optimized_flow=finding.optimized_flow,
            use_cache=use_cache,
            robustness=self.robustness,
            decide=decide,
            policy=policy,
            probe_delay=probe_delay,
            probe_cache=self.probe_cache is not None,
        )

    def _reduction_pool(
        self,
        finding: Finding,
        key: str,
        workers: int,
        *,
        use_cache: bool,
        decide: bool,
        policy: "object | None" = None,
    ) -> "object | None":
        """A single-finding :class:`~repro.perf.reduce_pool.ReductionPool`,
        or ``None`` when the finding cannot be shipped to workers (the
        caller falls back to the serial path)."""
        from repro.perf.reduce_pool import ReductionPool

        try:
            spec = self.finding_probe_spec(
                finding, use_cache=use_cache, decide=decide, policy=policy
            )
        except (KeyError, ValueError):
            return None
        if not ReductionPool.shippable(spec):
            return None
        return ReductionPool({key: spec}, workers)

    def _resolve_reduction_policy(
        self, policy: "object | None", max_seconds: float | None
    ) -> "object":
        from dataclasses import replace as dc_replace

        from repro.robustness import ReductionPolicy

        if policy is None:
            return (
                ReductionPolicy.from_robustness(
                    self.robustness, max_seconds=max_seconds
                )
                if self.robustness is not None
                else ReductionPolicy(max_seconds=max_seconds)
            )
        if policy.max_seconds is None and max_seconds is not None:
            return dc_replace(policy, max_seconds=max_seconds)
        return policy

    def _finish_reduce(
        self,
        finding: Finding,
        result: ReductionResult,
        replayer: "object | None",
        started: float,
        *,
        workers: int | None = None,
    ) -> ReductionResult:
        """Shared reduction epilogue: stats attachment, metrics, and the
        ``reduce.end`` event (with speculation accounting when parallel)."""
        if replayer is not None:
            result.replay_stats = replayer.stats
        elapsed = time.perf_counter() - started
        self.metrics.inc("reductions")
        self.metrics.inc("reduction_tests_run", result.tests_run)
        self.metrics.inc("reduction_chunks_removed", result.chunks_removed)
        self.metrics.observe("reduce_seconds", elapsed)
        cache = result.replay_stats.to_json() if replayer is not None else None
        if cache is not None:
            for field_name, value in cache.items():
                self.metrics.inc(f"replay.{field_name}", value)
        speculation = getattr(result, "speculation", None)
        extra: dict = {}
        if speculation is not None:
            self.metrics.inc("reduce.parallel")
            self.metrics.inc("reduce.speculation.dispatched", speculation.dispatched)
            self.metrics.inc("reduce.speculation.committed", speculation.committed)
            self.metrics.inc("reduce.speculation.wasted", speculation.wasted)
            extra = {"speculation": speculation.to_json(), "workers": workers}
        cache_delta = self._probe_cache_event_delta()
        if cache_delta is not None:
            extra["probe_cache"] = cache_delta
        self.tracer.emit(
            "reduce.end",
            target=finding.target_name,
            kind=finding.kind,
            signature=finding.signature,
            initial_length=result.initial_length,
            final_length=result.final_length,
            tests_run=result.tests_run,
            chunks_removed=result.chunks_removed,
            timed_out=result.timed_out,
            degraded=result.degraded,
            stability=result.stability,
            cache=cache,
            dur_s=round(elapsed, 6),
            **extra,
        )
        return result

    def _module_probe_factory(self, finding: Finding, replayer: "object | None" = None):
        """A pipeline ``module_probe``: maps the surviving sequence to the
        materialized module plus a module-level verdict test (the module
        analogue of :meth:`make_probe_test`), so module-stage passes probe
        through the same fault classification as sequence passes."""
        from repro.robustness import ProbeVerdict

        target = next(t for t in self.targets if t.name == finding.target_name)

        def module_probe(sequence):
            reference = target.run(finding.original, finding.inputs)
            if replayer is not None:
                ctx = replayer.replay(sequence)
            else:
                ctx = replay(finding.original, finding.inputs, sequence)
            inputs = ctx.inputs

            def module_verdict(module) -> "ProbeVerdict":
                variant = module
                if finding.optimized_flow:
                    variant = self._optimize(variant)
                outcome = target.run(variant, inputs)
                if outcome.kind in FAULT_KINDS:
                    fault_kind = _FAULT_CLASSIFICATION[outcome.kind][0]
                    if finding.kind != fault_kind:
                        return ProbeVerdict(False, fault=outcome.kind.value)
                classified = classify_outcome(outcome, reference)
                if classified is None:
                    return ProbeVerdict(False)
                signature, kind, _ = classified
                return ProbeVerdict(
                    kind == finding.kind and signature == finding.signature
                )

            return ctx.module, module_verdict

        return module_probe

    def spirv_cleanup(self, finding: Finding, transformations: Sequence):
        """Run the spirv-reduce module post-pass on the variant that
        *transformations* materializes (the standalone cleanup stage of the
        pre-pipeline chain; the pass pipeline's ``cleanup`` pass is the
        journaled, fault-enveloped equivalent)."""
        from repro.core.reducer import spirv_reduce

        module, module_verdict = self._module_probe_factory(finding)(transformations)

        def is_interesting_module(candidate) -> bool:
            return bool(module_verdict(candidate).interesting)

        return spirv_reduce(module, is_interesting_module)

    def _reduce_with_pipeline(
        self,
        finding: Finding,
        passes: Sequence,
        *,
        giveup: int | None,
        use_cache: bool,
        max_seconds: float | None,
        policy: "object | None",
        journal: "object | None",
        resume: bool,
        workers: int | None,
        window: int | None,
        probe_batch: int | None,
    ) -> ReductionResult:
        """The :meth:`reduce_finding` body for ``passes=...``: build a
        :class:`~repro.reduce.PipelineContext` over this finding's probes and
        run the creduce-style pass scheduler."""
        from repro.reduce import DEFAULT_GIVEUP, PassPipeline, PipelineContext

        fault_tolerant = (
            policy is not None
            or journal is not None
            or resume
            or self.robustness is not None
        )
        parallel = workers is not None and workers > 1
        pipeline = PassPipeline(
            passes, giveup=giveup if giveup is not None else DEFAULT_GIVEUP
        )
        self.tracer.emit(
            "reduce.begin",
            target=finding.target_name,
            kind=finding.kind,
            signature=finding.signature,
            initial_length=len(finding.transformations),
            cached=use_cache,
            fault_tolerant=fault_tolerant,
            passes=[p.name for p in pipeline.passes],
        )
        started = time.perf_counter()
        replayer = None
        if use_cache:
            from repro.perf.replay_cache import CachedReplayer

            replayer = CachedReplayer(finding.original, finding.inputs)
        pool = None
        pool_key = "finding"
        try:
            shared = dict(
                workers=workers or 1,
                window=window,
                pool_key=pool_key,
                probe_batch=probe_batch,
                tracer=self.tracer,
                metrics=self.metrics,
                module_probe=self._module_probe_factory(finding, replayer),
            )
            if fault_tolerant:
                from dataclasses import replace as dc_replace

                from repro.robustness import find_supervised

                policy = self._resolve_reduction_policy(policy, max_seconds)
                target = next(
                    t for t in self.targets if t.name == finding.target_name
                )
                probe_test = self.make_probe_test(finding, replayer=replayer)
                if parallel:
                    pool = self._reduction_pool(
                        finding,
                        pool_key,
                        workers,
                        use_cache=use_cache,
                        decide=True,
                        policy=dc_replace(policy, max_seconds=None),
                    )
                ctx = PipelineContext(
                    verdict_test=probe_test,
                    policy=policy,
                    journal=journal,
                    resume=resume,
                    supervised_target=find_supervised(target),
                    pool=pool,
                    max_seconds=policy.max_seconds,
                    replay_stats=replayer.stats if replayer is not None else None,
                    **shared,
                )
            else:
                test = self.make_interestingness_test(finding, replayer=replayer)
                if parallel:
                    pool = self._reduction_pool(
                        finding, pool_key, workers, use_cache=use_cache, decide=False
                    )
                ctx = PipelineContext(
                    is_interesting=test,
                    pool=pool,
                    max_seconds=max_seconds,
                    **shared,
                )
            result = pipeline.run(finding.transformations, ctx)
            if pool is not None and replayer is not None:
                replayer.stats.merge_json(pool.replay_stats_for(pool_key))
        finally:
            if pool is not None:
                pool.close()
        return self._finish_reduce(
            finding, result, replayer, started, workers=workers
        )

    def reduce_finding(
        self,
        finding: Finding,
        *,
        shrink_function_payloads: bool = False,
        use_cache: bool = True,
        max_seconds: float | None = None,
        policy: "object | None" = None,
        journal: "object | None" = None,
        resume: bool = False,
        workers: int | None = None,
        window: int | None = None,
        probe_batch: int | None = None,
        passes: "Sequence | None" = None,
        giveup: int | None = None,
    ) -> ReductionResult:
        """Delta-debug the finding's transformation sequence (§3.4).

        With ``shrink_function_payloads`` the optional spirv-reduce-style
        post-pass also shrinks the functions encoded in any surviving
        ``AddFunction`` transformations.  ``use_cache`` (the default) routes
        candidate replays through a prefix-caching replayer; disable it to
        reproduce the paper's pay-full-price reduction exactly (the reduced
        sequences are identical either way — only the work differs).

        ``max_seconds`` bounds the whole reduction's wall clock (the result is
        still a valid interesting subsequence, just not necessarily 1-minimal;
        ``ReductionResult.timed_out`` is set).

        The **fault-tolerant pipeline** (:func:`~repro.robustness.reduction.
        reduce_with_faults`) engages whenever the harness supervises its
        targets (a :class:`~repro.robustness.RobustnessConfig` was given) or
        the caller passes any of *policy* (a :class:`~repro.robustness.
        ReductionPolicy`), *journal* (a path or :class:`~repro.robustness.
        ReductionJournal` for checkpoint/resume), or ``resume=True``.  On a
        deterministic, well-behaved target it returns the same reduced
        sequence as the raw loop; under faults or flaky verdicts it retries,
        votes, degrades to best-so-far, and — with a journal — survives
        ``SIGKILL``.  Supervised probes are clamped to the remaining
        ``max_seconds`` budget, so reduction cannot hang on a target that
        stops answering.

        ``workers > 1`` probes candidates **speculatively in parallel** over
        a pool of persistent worker processes (each rebuilding this
        finding's probe — target, replayer, supervision and all — from a
        picklable spec).  Verdicts commit in serial scan order, so the
        reduced sequence, ``tests_run``, journal bytes, and accepted-chunk
        history are byte-identical to the serial path's for a deterministic
        oracle; only the wall clock changes.  *window* caps the speculation
        ramp (default ``workers * 4``).  A finding whose probe cannot be
        rebuilt in a worker silently falls back to the serial path.

        ``probe_batch > 1`` ships that many speculation candidates per
        worker round-trip on the plain parallel path, amortizing IPC
        (verdicts still commit in scan order, so results are unchanged).
        The fault-tolerant path keeps one candidate per trip — its retry
        and budget bookkeeping is per-probe.

        ``passes`` switches to the **creduce-style pass pipeline**
        (:class:`~repro.reduce.PassPipeline`): a list of pass names /
        instances (see :data:`~repro.reduce.DEFAULT_PASS_NAMES`) run in
        groups to a global fixpoint with a per-pass give-up budget
        (*giveup*, default 1000 consecutive rejections).  All other knobs —
        fault envelope, journal/resume, worker pool, probe batching —
        compose unchanged; ``shrink_function_payloads`` is ignored (the
        ``payload-shrink`` pass subsumes it).
        """
        if passes is not None:
            return self._reduce_with_pipeline(
                finding,
                passes,
                giveup=giveup,
                use_cache=use_cache,
                max_seconds=max_seconds,
                policy=policy,
                journal=journal,
                resume=resume,
                workers=workers,
                window=window,
                probe_batch=probe_batch,
            )
        fault_tolerant = (
            policy is not None
            or journal is not None
            or resume
            or self.robustness is not None
        )
        parallel = workers is not None and workers > 1
        self.tracer.emit(
            "reduce.begin",
            target=finding.target_name,
            kind=finding.kind,
            signature=finding.signature,
            initial_length=len(finding.transformations),
            cached=use_cache,
            fault_tolerant=fault_tolerant,
        )
        started = time.perf_counter()
        replayer = None
        if use_cache:
            from repro.perf.replay_cache import CachedReplayer

            replayer = CachedReplayer(finding.original, finding.inputs)
        pool = None
        pool_key = "finding"
        try:
            if fault_tolerant:
                from dataclasses import replace as dc_replace

                from repro.robustness import find_supervised, reduce_with_faults

                policy = self._resolve_reduction_policy(policy, max_seconds)
                target = next(
                    t for t in self.targets if t.name == finding.target_name
                )
                probe_test = self.make_probe_test(finding, replayer=replayer)
                if parallel:
                    # Workers decide single candidates; the wall-clock budget
                    # stays with the parent (deadline-bounded commit loop).
                    pool = self._reduction_pool(
                        finding,
                        pool_key,
                        workers,
                        use_cache=use_cache,
                        decide=True,
                        policy=dc_replace(policy, max_seconds=None),
                    )
                result = reduce_with_faults(
                    finding.transformations,
                    probe_test,
                    policy,
                    journal=journal,
                    resume=resume,
                    supervised_target=find_supervised(target),
                    tracer=self.tracer,
                    metrics=self.metrics,
                    replay_stats=replayer.stats if replayer is not None else None,
                    workers=workers if pool is not None else 1,
                    window=window,
                    pool=pool,
                    pool_key=pool_key,
                )
                # The post-pass (if requested) runs on the plain boolean view;
                # faults reject, which is conservative for a greedy shrink.
                test = lambda candidate: probe_test(candidate).interesting  # noqa: E731
            else:
                test = None
                if parallel:
                    pool = self._reduction_pool(
                        finding, pool_key, workers, use_cache=use_cache, decide=False
                    )
                if pool is not None:
                    from repro.perf.parallel_reduce import parallel_reduce

                    result = parallel_reduce(
                        finding.transformations,
                        workers=workers,
                        window=window,
                        max_seconds=max_seconds,
                        tracer=self.tracer,
                        pool=pool,
                        pool_key=pool_key,
                        batch=probe_batch,
                        metrics=self.metrics,
                    )
                    if shrink_function_payloads:
                        test = self.make_interestingness_test(
                            finding, replayer=replayer
                        )
                else:
                    test = self.make_interestingness_test(finding, replayer=replayer)
                    result = reduce_transformations(
                        finding.transformations, test, max_seconds=max_seconds,
                        tracer=self.tracer,
                    )
            if pool is not None and replayer is not None:
                # Worker replay counters fold into the parent's registry over
                # the same drain/merge path campaign metrics use.
                replayer.stats.merge_json(pool.replay_stats_for(pool_key))
        finally:
            if pool is not None:
                pool.close()
        if shrink_function_payloads:
            from repro.core.reducer import shrink_add_function_payloads

            shrink = shrink_add_function_payloads(result.transformations, test)
            result.transformations = shrink.transformations
            result.tests_run += shrink.tests_run
        return self._finish_reduce(
            finding, result, replayer, started, workers=workers
        )

    def reduce_all(
        self,
        findings: Sequence[Finding],
        *,
        workers: int | None = None,
        window: int | None = None,
        shrink_function_payloads: bool = False,
        use_cache: bool = True,
        max_seconds: float | None = None,
        policy: "object | None" = None,
        probe_batch: int | None = None,
        passes: "Sequence | None" = None,
        giveup: int | None = None,
    ) -> list[ReductionResult]:
        """Reduce a campaign's findings **concurrently over one shared worker
        pool** with fair (round-robin) candidate scheduling, so a stubborn
        reduction cannot starve the others.  Results come back in *findings*
        order and each is byte-identical to what a serial
        :meth:`reduce_finding` would have produced (same engine, same commit
        protocol).  ``workers=1`` — or a finding set that cannot be shipped
        to workers — is exactly the serial loop.

        With ``passes`` each finding runs the creduce-style pass pipeline
        via :meth:`reduce_finding` in sequence — per-finding ddmin legs still
        use their own worker pool, but the cross-finding fleet scheduling is
        reserved for the single-pass reducer.
        """
        from repro.perf.parallel import default_worker_count

        findings = list(findings)
        if workers is None or workers <= 0:
            workers = default_worker_count()
        if passes is not None:
            return [
                self.reduce_finding(
                    finding,
                    passes=passes,
                    giveup=giveup,
                    use_cache=use_cache,
                    max_seconds=max_seconds,
                    policy=policy,
                    workers=workers,
                    window=window,
                    probe_batch=probe_batch,
                )
                for finding in findings
            ]
        serial_kwargs = dict(
            shrink_function_payloads=shrink_function_payloads,
            use_cache=use_cache,
            max_seconds=max_seconds,
            policy=policy,
        )
        if workers == 1 or not findings:
            return [self.reduce_finding(f, **serial_kwargs) for f in findings]

        from dataclasses import replace as dc_replace

        from repro.perf.reduce_pool import ReductionPool

        fault_tolerant = policy is not None or self.robustness is not None
        resolved_policy = (
            self._resolve_reduction_policy(policy, max_seconds)
            if fault_tolerant
            else None
        )
        specs: dict[str, "object"] = {}
        try:
            for index, finding in enumerate(findings):
                specs[f"finding-{index}"] = self.finding_probe_spec(
                    finding,
                    use_cache=use_cache,
                    decide=fault_tolerant,
                    policy=(
                        dc_replace(resolved_policy, max_seconds=None)
                        if fault_tolerant
                        else None
                    ),
                )
        except (KeyError, ValueError):
            return [self.reduce_finding(f, **serial_kwargs) for f in findings]
        if any(not ReductionPool.shippable(spec) for spec in specs.values()):
            return [self.reduce_finding(f, **serial_kwargs) for f in findings]

        from repro.perf.parallel_reduce import (
            SpeculativePlainReduction,
            run_sessions,
        )
        from repro.robustness import find_supervised
        from repro.robustness.reduction import SpeculativeFaultReduction

        pool = ReductionPool(specs, workers)
        entries: list[dict] = []
        try:
            for index, finding in enumerate(findings):
                key = f"finding-{index}"
                self.tracer.emit(
                    "reduce.begin",
                    target=finding.target_name,
                    kind=finding.kind,
                    signature=finding.signature,
                    initial_length=len(finding.transformations),
                    cached=use_cache,
                    fault_tolerant=fault_tolerant,
                )
                started = time.perf_counter()
                replayer = None
                if use_cache:
                    from repro.perf.replay_cache import CachedReplayer

                    replayer = CachedReplayer(finding.original, finding.inputs)
                if fault_tolerant:
                    target = next(
                        t for t in self.targets if t.name == finding.target_name
                    )
                    probe_test = self.make_probe_test(finding, replayer=replayer)
                    reduction = SpeculativeFaultReduction(
                        finding.transformations,
                        probe_test,
                        resolved_policy,
                        supervised_target=find_supervised(target),
                        tracer=self.tracer,
                        metrics=self.metrics,
                        replay_stats=(
                            replayer.stats if replayer is not None else None
                        ),
                        workers=workers,
                        window=window,
                        pool_key=key,
                    )
                    probe_bool = (
                        lambda candidate, _probe=probe_test: _probe(
                            candidate
                        ).interesting
                    )
                else:
                    reduction = SpeculativePlainReduction(
                        finding.transformations,
                        pool=pool,
                        pool_key=key,
                        workers=workers,
                        window=window,
                        max_seconds=max_seconds,
                        tracer=self.tracer,
                    )
                    probe_bool = None
                entries.append(
                    dict(
                        finding=finding,
                        key=key,
                        started=started,
                        replayer=replayer,
                        reduction=reduction,
                        probe_bool=probe_bool,
                    )
                )
            sessions = [
                entry["reduction"].session
                for entry in entries
                if entry["reduction"].session is not None
            ]
            run_sessions(
                pool, sessions, batch=probe_batch or 1, metrics=self.metrics
            )
            results = []
            for entry in entries:
                result = entry["reduction"].finalize()
                replayer = entry["replayer"]
                if replayer is not None:
                    replayer.stats.merge_json(pool.replay_stats_for(entry["key"]))
                if shrink_function_payloads:
                    from repro.core.reducer import shrink_add_function_payloads

                    test = entry["probe_bool"]
                    if test is None:
                        test = self.make_interestingness_test(
                            entry["finding"], replayer=replayer
                        )
                    shrink = shrink_add_function_payloads(
                        result.transformations, test
                    )
                    result.transformations = shrink.transformations
                    result.tests_run += shrink.tests_run
                results.append(
                    self._finish_reduce(
                        entry["finding"],
                        result,
                        replayer,
                        entry["started"],
                        workers=workers,
                    )
                )
            return results
        finally:
            pool.close()

    def reduced_variant(
        self, finding: Finding, reduction: ReductionResult
    ) -> Module:
        """Materialise the reduced variant program for reporting."""
        return replay(
            finding.original, finding.inputs, reduction.transformations
        ).module


def run_quick_campaign(
    targets: Sequence[Target],
    references: Sequence[CorpusProgram],
    donors: Sequence[CorpusProgram],
    seeds: Sequence[int],
    options: FuzzerOptions | None = None,
) -> CampaignResult:
    """Convenience wrapper used by examples and benchmarks."""
    harness = Harness(targets, references, donors, options)
    return harness.run_campaign(seeds)
