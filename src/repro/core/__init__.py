"""The paper's core contribution: transformation-based compiler testing with
test-case reduction and deduplication almost for free."""

from repro.core.context import Context
from repro.core.dedup import (
    DedupResult,
    ReducedTest,
    deduplicate,
    score_against_ground_truth,
    type_signature_of,
)
from repro.core.dedup_corpus import synthetic_reduced_tests
from repro.core.dedup_scale import (
    DedupJournal,
    SketchConfig,
    StreamingDedup,
    iter_stream_tests,
    stream_dedup,
)
from repro.core.facts import DataDescriptor, FactManager, plain
from repro.core.fuzzer import Fuzzer, FuzzerOptions, FuzzResult, PAPER_TRANSFORMATION_LIMIT
from repro.core.harness import (
    CampaignResult,
    Finding,
    Harness,
    SeedRun,
    classify_outcome,
    run_quick_campaign,
)
from repro.core.reducer import (
    PayloadShrinkResult,
    ReductionResult,
    naive_reduce,
    reduce_transformations,
    replay,
    shrink_add_function_payloads,
    spirv_reduce,
)
from repro.core.regression import export_regression_test
from repro.core.signature import (
    MISCOMPILATION_SIGNATURE,
    crash_signature,
    invalid_ir_signature,
)
from repro.core.transformation import (
    SUPPORTING_TYPES,
    Transformation,
    apply_sequence,
    effective_types,
    sequence_from_json,
    sequence_to_json,
)

__all__ = [
    "CampaignResult",
    "Context",
    "DataDescriptor",
    "DedupJournal",
    "DedupResult",
    "FactManager",
    "Finding",
    "Fuzzer",
    "FuzzerOptions",
    "FuzzResult",
    "Harness",
    "MISCOMPILATION_SIGNATURE",
    "PAPER_TRANSFORMATION_LIMIT",
    "ReducedTest",
    "ReductionResult",
    "SUPPORTING_TYPES",
    "SketchConfig",
    "StreamingDedup",
    "SeedRun",
    "Transformation",
    "apply_sequence",
    "classify_outcome",
    "crash_signature",
    "deduplicate",
    "effective_types",
    "export_regression_test",
    "invalid_ir_signature",
    "iter_stream_tests",
    "naive_reduce",
    "plain",
    "PayloadShrinkResult",
    "reduce_transformations",
    "replay",
    "shrink_add_function_payloads",
    "run_quick_campaign",
    "score_against_ground_truth",
    "sequence_from_json",
    "sequence_to_json",
    "spirv_reduce",
    "stream_dedup",
    "synthetic_reduced_tests",
    "type_signature_of",
]
