"""Fuzzer passes (§3.2).

Each pass "sweeps through the module looking for opportunities to apply a
particular combination of transformations, probabilistically deciding which
of these opportunities to take".  A pass produces candidate transformations;
the shared driver applies those whose preconditions hold, spending the
transformation budget.

Passes also declare *recommended follow-on passes*, implementing the paper's
recommendations strategy: after running a pass, a random subset of its
follow-ons is pushed onto the recommendation queue.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

from repro.core.context import Context
from repro.core.livesafe import count_fresh_ids_needed, livesafe_obstacles
from repro.core.transformation import Transformation
from repro.core.transformations import (
    AddAccessChain,
    AddCompositeConstruct,
    AddCompositeExtract,
    AddCompositeInsert,
    AddConstant,
    AddCopyObject,
    AddDeadBlock,
    AddEquationInstruction,
    AddFunction,
    AddLoad,
    AddParameter,
    AddStore,
    AddType,
    AddUniform,
    AddVariable,
    FunctionCall,
    InlineFunction,
    InsertBefore,
    MoveBlockDown,
    ObfuscateBranch,
    ObfuscateConstant,
    OutlineFunction,
    PermuteFunctionParameters,
    PermutePhiOperands,
    PropagateInstructionUp,
    ReplaceBranchWithKill,
    ReplaceConstantWithUniform,
    ReplaceIdWithSynonym,
    ReplaceIrrelevantId,
    SplitBlock,
    SwapCommutableOperands,
    ToggleFunctionControl,
    WrapInSelect,
    WrapRegionInSelection,
)
from repro.core.transformations.insertion import sample_insertion_points
from repro.interp.values import srem, wrap_i32
from repro.ir import types as tys
from repro.ir.module import Function, Instruction
from repro.ir.opcodes import (
    COMMUTATIVE_OPS,
    FUNCTION_CONTROLS,
    Op,
    OperandKind,
    op_info,
)
from repro.ir.printer import format_instruction
from repro.ir.rewrite import callee_ids_requiring_fresh


class IdSource:
    """Hands out ids guaranteed fresh for the whole fuzzing session.

    Transformations record these explicitly (the paper's independence
    principle); the source never reuses an id, so recorded transformations
    stay mutually consistent under any subsequence replay.
    """

    def __init__(self, start: int) -> None:
        self._next = start

    def take(self) -> int:
        value = self._next
        self._next += 1
        return value

    def take_many(self, count: int) -> list[int]:
        return [self.take() for _ in range(count)]


@dataclass
class Budget:
    """Remaining transformation budget (the paper caps runs at 2000)."""

    remaining: int

    def exhausted(self) -> bool:
        return self.remaining <= 0

    def spend(self) -> None:
        self.remaining -= 1


class FuzzerPass(abc.ABC):
    """Base class: candidate generation plus the apply-with-budget driver."""

    name: str = "pass"
    #: Names of passes worth running soon after this one (recommendations).
    follow_ons: tuple[str, ...] = ()
    #: Probability of taking each opportunity the sweep finds.
    chance: float = 0.35
    #: Cap on applications per pass execution, to keep sweeps bounded.
    max_applications: int = 8

    @abc.abstractmethod
    def candidates(
        self, ctx: Context, rng: random.Random, ids: IdSource
    ) -> list[Transformation]:
        """Generate candidate transformations for the current context."""

    def run(
        self,
        ctx: Context,
        rng: random.Random,
        ids: IdSource,
        budget: Budget,
        *,
        recover: bool = False,
    ) -> list[Transformation]:
        applied: list[Transformation] = []
        for candidate in self.candidates(ctx, rng, ids):
            if budget.exhausted() or len(applied) >= self.max_applications:
                break
            if rng.random() > self.chance:
                continue
            if candidate.precondition(ctx):
                if recover:
                    # Robustness mode: a buggy effect must cost only its own
                    # transformation, and a *partial* effect must never leak
                    # into the variant (it would break the semantics-
                    # preservation invariant and fake miscompilations), so
                    # roll the context back to the pre-apply snapshot.
                    snapshot = ctx.clone()
                    try:
                        candidate.apply(ctx)
                    except Exception:
                        ctx.module = snapshot.module
                        ctx.inputs = snapshot.inputs
                        ctx.facts = snapshot.facts
                        ctx.invalidate()
                        continue
                else:
                    candidate.apply(ctx)
                ctx.invalidate()
                budget.spend()
                applied.append(candidate)
        return applied

    # -- shared sampling helpers -------------------------------------------------

    def _functions(self, ctx: Context) -> list[Function]:
        return list(ctx.module.functions)

    def _random_points(
        self,
        ctx: Context,
        rng: random.Random,
        count: int,
        *,
        dead_only: bool = False,
    ) -> list[InsertBefore]:
        points: list[InsertBefore] = []
        for function in ctx.module.functions:
            for point in sample_insertion_points(ctx, function):
                if dead_only:
                    label = self._point_block(ctx, function, point)
                    if label is None or not ctx.facts.is_dead_block(label):
                        continue
                points.append(point)
        rng.shuffle(points)
        return points[:count]

    def _point_block(self, ctx: Context, function: Function, point: InsertBefore) -> int | None:
        located = point.resolve(ctx)
        if located is None:
            return None
        return located[1].label_id

    def _values_at(
        self, ctx: Context, point: InsertBefore, predicate
    ) -> list[int]:
        located = point.resolve(ctx)
        if located is None:
            return []
        function, block, index = located
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        result = []
        for value_id in availability.ids_available_at(block.label_id, anchor):
            inst = ctx.defs().get(value_id)
            if inst is None or inst.type_id is None:
                continue
            if op_info(inst.opcode).is_type_decl:
                continue
            ty = ctx.types().get(inst.type_id)
            if ty is not None and predicate(value_id, ty):
                result.append(value_id)
        return result

    def _body_instructions(self, ctx: Context) -> list[Instruction]:
        result = []
        for function in ctx.module.functions:
            for block in function.blocks:
                result.extend(
                    inst for inst in block.instructions if inst.result_id is not None
                )
        return result

    def _id_operand_slots(self, inst: Instruction) -> list[int]:
        """Operand indices holding value ids (excludes phis by caller)."""
        return [
            i
            for i, (kind, _) in enumerate(inst.operand_slots())
            if kind is OperandKind.ID
        ]


# -- concrete passes -------------------------------------------------------------


class PassAddTypesAndConstants(FuzzerPass):
    name = "add_types_constants"
    follow_ons = ("add_variables", "add_composites", "add_dead_blocks", "obfuscate")
    chance = 0.8

    _INTERESTING_INTS = (0, 1, 2, 3, 8, -1, 100, 2**31 - 1, -(2**31), 7, 13)
    _INTERESTING_FLOATS = (0.0, 1.0, -1.0, 0.5, 256.0)

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for kind in ("bool", "int", "float"):
            out.append(AddType(ids.take(), kind))
        types = ctx.types()
        int_ids = [i for i, t in types.items() if isinstance(t, tys.IntType)]
        float_ids = [i for i, t in types.items() if isinstance(t, tys.FloatType)]
        bool_ids = [i for i, t in types.items() if isinstance(t, tys.BoolType)]
        scalar_ids = int_ids + float_ids + bool_ids
        if scalar_ids:
            element = rng.choice(scalar_ids)
            out.append(AddType(ids.take(), "vector", [element, rng.choice((2, 3, 4))]))
            out.append(AddType(ids.take(), "array", [element, rng.choice((2, 3, 4))]))
        composite_ids = [i for i, t in types.items() if t.is_composite()]
        members = scalar_ids + composite_ids
        if members:
            chosen = [rng.choice(members) for _ in range(rng.randint(1, 3))]
            out.append(AddType(ids.take(), "struct", chosen))
        if composite_ids:
            # Deepen the type zoo: arrays/structs *of* composites give access
            # chains something to descend into.
            nested = rng.choice(composite_ids)
            out.append(AddType(ids.take(), "array", [nested, rng.choice((2, 3))]))
        pointable = [
            i
            for i, t in types.items()
            if not isinstance(t, (tys.VoidType, tys.FunctionType, tys.PointerType))
        ]
        if pointable:
            pointee = rng.choice(pointable)
            storage = rng.choice(("Function", "Private"))
            out.append(AddType(ids.take(), "pointer", [storage, pointee]))
        for int_type in int_ids[:1]:
            for value in rng.sample(self._INTERESTING_INTS, k=4):
                out.append(AddConstant(ids.take(), int_type, value))
        for float_type in float_ids[:1]:
            for value in rng.sample(self._INTERESTING_FLOATS, k=2):
                out.append(AddConstant(ids.take(), float_type, value))
        for bool_type in bool_ids[:1]:
            out.append(AddConstant(ids.take(), bool_type, True))
            out.append(AddConstant(ids.take(), bool_type, False))
        if scalar_ids and rng.random() < 0.4:
            out.append(AddConstant(ids.take(), rng.choice(scalar_ids), undef=True))
        # A composite constant now and then.
        for type_id, ty in types.items():
            if not ty.is_composite() or rng.random() < 0.7:
                continue
            member_types = [
                tys.composite_member_type(ty, i)
                for i in range(tys.composite_member_count(ty))
            ]
            member_ids = []
            for member_ty in member_types:
                options = [
                    inst.result_id
                    for inst in ctx.module.global_insts
                    if op_info(inst.opcode).is_constant_decl
                    and inst.opcode is not Op.Undef
                    and inst.type_id is not None
                    and ctx.types().get(inst.type_id) == member_ty
                ]
                if not options:
                    member_ids = []
                    break
                member_ids.append(rng.choice(options))
            if member_ids:
                out.append(AddConstant(ids.take(), type_id, 0, member_ids))
        return out


class PassAddVariables(FuzzerPass):
    name = "add_variables"
    follow_ons = ("add_loads_stores",)
    chance = 0.5

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        pointer_types = [
            (i, t) for i, t in ctx.types().items() if isinstance(t, tys.PointerType)
        ]
        for type_id, ptr_ty in pointer_types:
            if ptr_ty.storage is tys.StorageClass.FUNCTION and ctx.module.functions:
                function = rng.choice(ctx.module.functions)
                out.append(AddVariable(ids.take(), type_id, function.result_id))
            elif ptr_ty.storage is tys.StorageClass.PRIVATE:
                out.append(AddVariable(ids.take(), type_id, 0))
        rng.shuffle(out)
        return out


class PassSplitBlocks(FuzzerPass):
    name = "split_blocks"
    follow_ons = ("add_dead_blocks", "permute_blocks")
    chance = 0.3

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for inst in self._body_instructions(ctx):
            if inst.opcode in (Op.Phi, Op.Variable):
                continue
            out.append(SplitBlock(ids.take(), instruction_id=inst.result_id))
        for function in ctx.module.functions:
            for block in function.blocks:
                out.append(SplitBlock(ids.take(), block_label=block.label_id))
        rng.shuffle(out)
        return out[:12]


class PassAddDeadBlocks(FuzzerPass):
    name = "add_dead_blocks"
    follow_ons = ("kill_dead_branches", "add_loads_stores", "function_calls", "obfuscate")
    chance = 0.45

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        trues = ctx.known_true_ids()
        falses = ctx.known_false_ids()
        for function in ctx.module.functions:
            for block in function.blocks:
                if block.terminator is None or block.terminator.opcode is not Op.Branch:
                    continue
                negate = bool(falses) and rng.random() < 0.5
                condition_pool = falses if negate else trues
                if not condition_pool:
                    continue
                out.append(
                    AddDeadBlock(
                        ids.take(), block.label_id, rng.choice(condition_pool), negate
                    )
                )
        rng.shuffle(out)
        return out[:10]


class PassKillDeadBranches(FuzzerPass):
    name = "kill_dead_branches"
    follow_ons = ("split_blocks",)
    chance = 0.5

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for label in sorted(ctx.facts.dead_blocks):
            out.append(ReplaceBranchWithKill(label, use_unreachable=rng.random() < 0.3))
        rng.shuffle(out)
        return out


class PassAddLoadsStores(FuzzerPass):
    name = "add_loads_stores"
    follow_ons = ("add_synonyms", "replace_irrelevant")
    chance = 0.4

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for point in self._random_points(ctx, rng, 10):
            pointers = self._values_at(
                ctx, point, lambda _vid, ty: isinstance(ty, tys.PointerType)
            )
            if not pointers:
                continue
            pointer = rng.choice(pointers)
            choice = rng.random()
            if choice < 0.45:
                out.append(
                    AddLoad(ids.take(), pointer, point.anchor_id, point.block_label)
                )
            elif choice < 0.75:
                ptr_ty = ctx.value_type(pointer)
                assert isinstance(ptr_ty, tys.PointerType)
                values = self._values_at(
                    ctx, point, lambda _vid, ty: ty == ptr_ty.pointee
                )
                if values:
                    out.append(
                        AddStore(
                            pointer,
                            rng.choice(values),
                            point.anchor_id,
                            point.block_label,
                        )
                    )
            else:
                ptr_ty = ctx.value_type(pointer)
                assert isinstance(ptr_ty, tys.PointerType)
                chain = self._pick_chain(ctx, rng, ptr_ty)
                if chain is not None:
                    out.append(
                        AddAccessChain(
                            ids.take(),
                            pointer,
                            chain,
                            point.anchor_id,
                            point.block_label,
                        )
                    )
        return out

    def _pick_chain(self, ctx, rng, ptr_ty: tys.PointerType) -> list[int] | None:
        """Constant indices walking as deep as possible into the pointee."""
        current = ptr_ty.pointee
        chain: list[int] = []
        while current.is_composite() and (len(chain) < 2 or rng.random() < 0.7):
            count = tys.composite_member_count(current)
            index = rng.randrange(count)
            const_id = ctx.module.find_constant_id(
                ctx.module.find_type_id(tys.IntType()) or -1, index
            )
            if const_id is None:
                break
            chain.append(const_id)
            current = tys.composite_member_type(current, index)
        return chain or None


class PassAddSynonyms(FuzzerPass):
    name = "add_synonyms"
    follow_ons = ("replace_synonyms", "add_composites")
    chance = 0.45

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        int_type_id = ctx.module.find_type_id(tys.IntType())
        zero = (
            ctx.module.find_constant_id(int_type_id, 0) if int_type_id else None
        )
        one = ctx.module.find_constant_id(int_type_id, 1) if int_type_id else None
        for point in self._random_points(ctx, rng, 8):
            values = self._values_at(
                ctx,
                point,
                lambda _vid, ty: not isinstance(ty, (tys.VoidType, tys.FunctionType)),
            )
            if not values:
                continue
            value = rng.choice(values)
            value_ty = ctx.value_type(value)
            roll = rng.random()
            if roll < 0.35:
                # Bias toward copying existing copies: chains of OpCopyObject
                # are a feature real rewrite passes choke on.
                copies = [
                    v
                    for v in values
                    if (d := ctx.defs().get(v)) is not None
                    and d.opcode is Op.CopyObject
                ]
                source = rng.choice(copies) if copies and rng.random() < 0.6 else value
                out.append(
                    AddCopyObject(ids.take(), source, point.anchor_id, point.block_label)
                )
            elif isinstance(value_ty, tys.IntType):
                if roll < 0.55 and zero is not None:
                    out.append(
                        AddEquationInstruction(
                            [ids.take()],
                            "iadd-zero",
                            [value, zero],
                            anchor_id=point.anchor_id,
                            block_label=point.block_label,
                        )
                    )
                elif roll < 0.7 and one is not None:
                    out.append(
                        AddEquationInstruction(
                            [ids.take()],
                            "imul-one",
                            [value, one],
                            anchor_id=point.anchor_id,
                            block_label=point.block_label,
                        )
                    )
                else:
                    constants = self._values_at(
                        ctx,
                        point,
                        lambda vid, ty: isinstance(ty, tys.IntType)
                        and ctx.module.is_constant(vid),
                    )
                    if constants:
                        out.append(
                            AddEquationInstruction(
                                ids.take_many(2),
                                "iadd-isub",
                                [value, rng.choice(constants)],
                                anchor_id=point.anchor_id,
                                block_label=point.block_label,
                            )
                        )
            elif isinstance(value_ty, tys.FloatType):
                out.append(
                    AddEquationInstruction(
                        ids.take_many(2),
                        "fneg-fneg",
                        [value],
                        anchor_id=point.anchor_id,
                        block_label=point.block_label,
                    )
                )
            elif isinstance(value_ty, tys.BoolType):
                source = ctx.defs().get(value)
                form = "lognot-lognot"
                if source is not None and source.opcode.value.startswith(
                    ("OpSLess", "OpSGreater", "OpIEqual", "OpINotEqual")
                ) and rng.random() < 0.5:
                    form = "invert-compare"
                out.append(
                    AddEquationInstruction(
                        ids.take_many(2),
                        form,
                        [value],
                        anchor_id=point.anchor_id,
                        block_label=point.block_label,
                    )
                )
        # Free-form arithmetic in dead blocks, including trapping shapes.
        for point in self._random_points(ctx, rng, 4, dead_only=True):
            int_consts = self._values_at(
                ctx,
                point,
                lambda vid, ty: isinstance(ty, tys.IntType) and ctx.module.is_constant(vid),
            )
            if len(int_consts) >= 2:
                free_op = rng.choice(("OpSDiv", "OpSRem", "OpIMul", "OpIAdd"))
                divisor = rng.choice(int_consts)
                if free_op in ("OpSDiv", "OpSRem") and rng.random() < 0.5:
                    # Dead code may divide by zero; real compilers fold it
                    # anyway (and some crash doing so).
                    int_type_id = ctx.defs()[int_consts[0]].type_id
                    zero_const = ctx.module.find_constant_id(int_type_id, 0)
                    if zero_const is not None:
                        divisor = zero_const
                out.append(
                    AddEquationInstruction(
                        [ids.take()],
                        "free",
                        [rng.choice(int_consts), divisor],
                        free_op=free_op,
                        anchor_id=point.anchor_id,
                        block_label=point.block_label,
                    )
                )
        return out


class PassPermuteOperands(FuzzerPass):
    """Order-shuffling transformations: phi pairs and function parameters."""

    name = "permute_operands"
    follow_ons = ("swap_operands",)
    chance = 0.35

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for function in ctx.module.functions:
            for block in function.blocks:
                for phi in block.phis():
                    pairs = len(phi.phi_pairs())
                    if pairs >= 2:
                        out.append(
                            PermutePhiOperands(
                                phi.result_id, rng.randrange(1, pairs)
                            )
                        )
            if (
                len(function.params) >= 2
                and function.result_id != ctx.module.entry_point_id
            ):
                order = list(range(len(function.params)))
                rng.shuffle(order)
                out.append(
                    PermuteFunctionParameters(
                        function.result_id, order, ids.take()
                    )
                )
        rng.shuffle(out)
        return out[:5]


class PassAddComposites(FuzzerPass):
    name = "add_composites"
    follow_ons = ("replace_synonyms",)
    chance = 0.4

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        composite_types = [
            (i, t) for i, t in ctx.types().items() if t.is_composite()
        ]
        for point in self._random_points(ctx, rng, 6):
            if composite_types and rng.random() < 0.6:
                type_id, ty = rng.choice(composite_types)
                member_ids = []
                for i in range(tys.composite_member_count(ty)):
                    member_ty = tys.composite_member_type(ty, i)
                    options = self._values_at(
                        ctx, point, lambda _vid, t: t == member_ty
                    )
                    if not options:
                        member_ids = []
                        break
                    member_ids.append(rng.choice(options))
                if member_ids:
                    out.append(
                        AddCompositeConstruct(
                            ids.take(),
                            type_id,
                            member_ids,
                            point.anchor_id,
                            point.block_label,
                        )
                    )
            else:
                composites = self._values_at(
                    ctx, point, lambda _vid, ty: ty.is_composite()
                )
                if composites:
                    composite = rng.choice(composites)
                    ty = ctx.value_type(composite)
                    assert ty is not None
                    index = rng.randrange(tys.composite_member_count(ty))
                    if rng.random() < 0.6:
                        out.append(
                            AddCompositeExtract(
                                ids.take(),
                                composite,
                                [index],
                                point.anchor_id,
                                point.block_label,
                            )
                        )
                    else:
                        member_ty = tys.composite_member_type(ty, index)
                        objects = self._values_at(
                            ctx, point, lambda _vid, t: t == member_ty
                        )
                        if objects:
                            out.append(
                                AddCompositeInsert(
                                    ids.take(),
                                    composite,
                                    rng.choice(objects),
                                    index,
                                    point.anchor_id,
                                    point.block_label,
                                )
                            )
        return out


class PassReplaceSynonyms(FuzzerPass):
    name = "replace_synonyms"
    follow_ons = ()
    chance = 0.5

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for inst in self._body_instructions(ctx):
            if inst.opcode in (Op.Phi, Op.Variable):
                continue
            for slot in self._id_operand_slots(inst):
                current = int(inst.operands[slot])
                synonyms = ctx.facts.plain_synonyms_of(current)
                if synonyms:
                    out.append(
                        ReplaceIdWithSynonym(
                            inst.result_id, slot, rng.choice(synonyms)
                        )
                    )
        rng.shuffle(out)
        return out[:10]


class PassReplaceIrrelevant(FuzzerPass):
    name = "replace_irrelevant"
    follow_ons = ()
    chance = 0.5

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for inst in self._body_instructions(ctx):
            if inst.opcode in (Op.Phi, Op.Variable):
                continue
            for slot in self._id_operand_slots(inst):
                current = int(inst.operands[slot])
                qualifies = ctx.facts.is_irrelevant(current) or (
                    inst.result_id is not None
                    and ctx.facts.is_irrelevant_use(inst.result_id, slot)
                )
                if not qualifies:
                    continue
                current_ty = ctx.value_type(current)
                if current_ty is None:
                    continue
                point = InsertBefore(anchor_id=inst.result_id)
                options = self._values_at(
                    ctx, point, lambda _vid, ty: ty == current_ty
                )
                options = [o for o in options if o != current]
                if options:
                    out.append(
                        ReplaceIrrelevantId(inst.result_id, slot, rng.choice(options))
                    )
        rng.shuffle(out)
        return out[:8]


class PassObfuscate(FuzzerPass):
    name = "obfuscate"
    follow_ons = ("replace_synonyms",)
    chance = 0.4

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        uniforms = [
            inst.result_id
            for inst in ctx.module.global_variables()
            if str(inst.operands[0]) == "Uniform"
            and ctx.module.name_of(inst.result_id) in ctx.inputs
        ]
        int_consts = [
            inst
            for inst in ctx.module.global_insts
            if inst.opcode is Op.Constant
            and isinstance(ctx.types().get(inst.type_id), tys.IntType)
        ]
        float_consts = [
            inst
            for inst in ctx.module.global_insts
            if inst.opcode is Op.Constant
            and isinstance(ctx.types().get(inst.type_id), tys.FloatType)
        ]
        for inst in self._body_instructions(ctx):
            if inst.opcode in (Op.Phi, Op.Variable):
                continue
            for slot in self._id_operand_slots(inst):
                if rng.random() < 0.7:
                    continue
                current = int(inst.operands[slot])
                source = ctx.defs().get(current)
                if source is None:
                    continue
                if source.opcode in (Op.ConstantTrue, Op.ConstantFalse):
                    roll = rng.random()
                    if roll < 0.3 and uniforms:
                        out.append(
                            ReplaceConstantWithUniform(
                                inst.result_id, slot, rng.choice(uniforms), ids.take()
                            )
                        )
                    elif roll < 0.6 and int_consts:
                        out.append(
                            ObfuscateConstant(
                                inst.result_id,
                                slot,
                                "bool-int-eq",
                                ids.take(),
                                [rng.choice(int_consts).result_id],
                            )
                        )
                    elif float_consts:
                        out.append(
                            ObfuscateConstant(
                                inst.result_id,
                                slot,
                                "bool-float-eq",
                                ids.take(),
                                [rng.choice(float_consts).result_id],
                            )
                        )
                elif source.opcode is Op.Constant:
                    if uniforms and rng.random() < 0.4:
                        out.append(
                            ReplaceConstantWithUniform(
                                inst.result_id, slot, rng.choice(uniforms), ids.take()
                            )
                        )
                    elif rng.random() < 0.3:
                        # No matching uniform: mint one in sync with the
                        # input (§7 future work) and route the use through it.
                        source_ty = ctx.types().get(source.type_id)
                        kind = (
                            "int"
                            if isinstance(source_ty, tys.IntType)
                            else "float"
                            if isinstance(source_ty, tys.FloatType)
                            else None
                        )
                        if kind is not None:
                            uniform_id = ids.take()
                            out.append(
                                AddUniform(
                                    uniform_id,
                                    kind,
                                    f"_fz_u{uniform_id}",
                                    source.operands[0],
                                    ids.take(),
                                )
                            )
                            out.append(
                                ReplaceConstantWithUniform(
                                    inst.result_id, slot, uniform_id, ids.take()
                                )
                            )
                    elif isinstance(
                        ctx.types().get(source.type_id), tys.IntType
                    ) and len(int_consts) >= 1:
                        out.extend(
                            self._int_obfuscations(ctx, rng, ids, inst, slot, source)
                        )
                else:
                    # Wrap an arbitrary use in a constant select.
                    trues, falses = ctx.known_true_ids(), ctx.known_false_ids()
                    if not (trues or falses):
                        continue
                    current_ty = ctx.value_type(current)
                    if current_ty is None or isinstance(current_ty, tys.PointerType):
                        continue
                    point = InsertBefore(anchor_id=inst.result_id)
                    others = self._values_at(
                        ctx, point, lambda _vid, ty: ty == current_ty
                    )
                    if not others:
                        continue
                    negate = bool(falses) and (not trues or rng.random() < 0.5)
                    pool = falses if negate else trues
                    if not pool:
                        continue
                    condition = rng.choice(pool)
                    out.append(
                        WrapInSelect(
                            inst.result_id,
                            slot,
                            ids.take(),
                            condition,
                            rng.choice(others),
                            negate,
                        )
                    )
        # Branch obfuscation.
        for function in ctx.module.functions:
            for block in function.blocks:
                if (
                    block.terminator is not None
                    and block.terminator.opcode is Op.Branch
                    and rng.random() < 0.3
                ):
                    bools = self._values_at(
                        ctx,
                        InsertBefore(block_label=block.label_id),
                        lambda _vid, ty: isinstance(ty, tys.BoolType),
                    )
                    if bools:
                        out.append(ObfuscateBranch(block.label_id, rng.choice(bools)))
        rng.shuffle(out)
        return out[:10]

    def _int_obfuscations(self, ctx, rng, ids, inst, slot, source):
        """`c` -> `c1 + c2` (possibly overflowing) or `c1 % c2`."""
        out = []
        value = int(source.operands[0])
        int_type_id = source.type_id

        def const_id(wanted: int) -> int | None:
            """Existing constant id, or queue an AddConstant candidate."""
            existing = ctx.module.find_constant_id(int_type_id, wanted)
            if existing is not None:
                return existing
            if not -(2**31) <= wanted < 2**31:
                return None
            fresh = ids.take()
            out.append(AddConstant(fresh, int_type_id, wanted))
            return fresh

        if rng.random() < 0.5:
            # An overflowing pair: c = wrap(big + (c - big)) where the raw sum
            # escapes i32 range (feeding saturating-fold bugs).
            big = 2**31 - 1 if value < 0 else -(2**31)
            partner = wrap_i32(value - big)
            if wrap_i32(big + partner) == value:
                c1, c2 = const_id(big), const_id(partner)
                if c1 is not None and c2 is not None:
                    out.append(
                        ObfuscateConstant(
                            inst.result_id, slot, "int-add-pair", ids.take(), [c1, c2]
                        )
                    )
        elif value != 0:
            # c = srem(d, m) with *mixed signs*: truncating remainder keeps
            # the dividend's sign while floor remainder follows the modulus,
            # so this shape distinguishes floor-folding compilers.
            magnitude = abs(value) + rng.randint(1, 9)
            if value > 0:
                modulus = -magnitude
                dividend = value + 2 * magnitude
            else:
                modulus = magnitude
                dividend = value - 2 * magnitude
            if -(2**31) <= dividend < 2**31 and srem(dividend, modulus) == value:
                c1, c2 = const_id(dividend), const_id(modulus)
                if c1 is not None and c2 is not None:
                    out.append(
                        ObfuscateConstant(
                            inst.result_id, slot, "int-srem-pair", ids.take(), [c1, c2]
                        )
                    )
        return out


class PassAddParameters(FuzzerPass):
    name = "add_parameters"
    follow_ons = ("replace_irrelevant", "function_calls")
    chance = 0.4

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        scalar_consts = [
            inst
            for inst in ctx.module.global_insts
            if op_info(inst.opcode).is_constant_decl and inst.opcode is not Op.Undef
        ]
        if not scalar_consts:
            return out
        for function in ctx.module.functions:
            if function.result_id == ctx.module.entry_point_id:
                continue
            const = rng.choice(scalar_consts)
            out.append(
                AddParameter(
                    function.result_id,
                    ids.take(),
                    const.type_id,
                    const.result_id,
                    ids.take(),
                )
            )
        rng.shuffle(out)
        return out[:4]


class PassAddFunctions(FuzzerPass):
    name = "add_functions"
    follow_ons = ("function_calls", "toggle_controls", "inline_functions")
    chance = 0.6
    max_applications = 2

    def __init__(self, donor_bank: "DonorBank") -> None:
        self.donor_bank = donor_bank

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for _ in range(2):
            donation = self.donor_bank.sample(rng)
            if donation is None:
                continue
            make_livesafe = donation.livesafe_eligible and rng.random() < 0.8
            donor_ids = donation.all_donor_ids()
            id_map = {donor_id: ids.take() for donor_id in donor_ids}
            livesafe_ids = (
                ids.take_many(donation.livesafe_id_need) if make_livesafe else []
            )
            out.append(
                AddFunction(
                    declarations=list(donation.declarations),
                    function_lines=list(donation.function_lines),
                    id_map=id_map,
                    make_livesafe=make_livesafe,
                    livesafe_ids=livesafe_ids,
                    name=donation.name,
                )
            )
        return out


class PassFunctionCalls(FuzzerPass):
    name = "function_calls"
    follow_ons = ("inline_functions", "replace_irrelevant")
    chance = 0.5

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        types = ctx.types()
        callable_live = [
            f for f in ctx.module.functions if ctx.facts.is_livesafe(f.result_id)
        ]
        all_functions = [
            f
            for f in ctx.module.functions
            if f.result_id != ctx.module.entry_point_id
        ]
        for point in self._random_points(ctx, rng, 6):
            located = point.resolve(ctx)
            if located is None:
                continue
            block_label = located[1].label_id
            dead = ctx.facts.is_dead_block(block_label)
            pool = all_functions if dead else callable_live
            if not pool:
                continue
            callee = rng.choice(pool)
            if dead and rng.random() < 0.3:
                # From dead blocks even recursion is fair game (§3.2): prefer
                # calling the function the dead block lives in.
                containing = located[0]
                if containing.result_id != ctx.module.entry_point_id:
                    callee = containing
            fn_ty = types.get(callee.function_type_id)
            if not isinstance(fn_ty, tys.FunctionType):
                continue
            args = []
            for param_ty in fn_ty.params:
                if isinstance(param_ty, tys.PointerType) and not dead:
                    options = [
                        v
                        for v in self._values_at(
                            ctx, point, lambda _vid, ty: ty == param_ty
                        )
                        if ctx.facts.is_irrelevant_pointee(v)
                    ]
                else:
                    options = self._values_at(
                        ctx, point, lambda vid, ty: ty == param_ty
                    )
                    constants = [o for o in options if ctx.module.is_constant(o)]
                    if constants:
                        options = constants  # trivial constants first (§3.3)
                if not options:
                    args = None
                    break
                args.append(rng.choice(options))
            if args is not None:
                out.append(
                    FunctionCall(
                        ids.take(),
                        callee.result_id,
                        args,
                        point.anchor_id,
                        point.block_label,
                    )
                )
        return out


class PassInlineFunctions(FuzzerPass):
    name = "inline_functions"
    follow_ons = ("split_blocks", "permute_blocks")
    chance = 0.3
    max_applications = 2

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for caller in ctx.module.functions:
            for block in caller.blocks:
                for inst in block.instructions:
                    if inst.opcode is not Op.FunctionCall:
                        continue
                    callee_id = int(inst.operands[0])
                    if not ctx.module.has_function(callee_id):
                        continue
                    if callee_id == caller.result_id:
                        continue
                    callee = ctx.module.get_function(callee_id)
                    id_map = {
                        donor: ids.take()
                        for donor in callee_ids_requiring_fresh(callee)
                    }
                    out.append(
                        InlineFunction(
                            inst.result_id, id_map, ids.take(), ids.take()
                        )
                    )
        rng.shuffle(out)
        return out[:3]


class PassPermuteBlocks(FuzzerPass):
    name = "permute_blocks"
    follow_ons = ("propagate_up",)
    chance = 0.35

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for function in ctx.module.functions:
            for block in function.blocks[1:-1]:
                out.append(MoveBlockDown(block.label_id))
        rng.shuffle(out)
        return out[:8]


class PassPropagateUp(FuzzerPass):
    name = "propagate_up"
    follow_ons = ("replace_synonyms",)
    chance = 0.35

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for function in ctx.module.functions:
            for block in function.blocks[1:]:
                preds = function.predecessors(block.label_id)
                if not preds or block.label_id in preds:
                    continue
                for inst in block.instructions:
                    if inst.opcode is Op.Phi or inst.result_id is None:
                        continue
                    fresh = {pred: ids.take() for pred in preds}
                    out.append(PropagateInstructionUp(inst.result_id, fresh))
                    break  # one candidate per block keeps sweeps cheap
        rng.shuffle(out)
        return out[:6]


class PassWrapSelections(FuzzerPass):
    name = "wrap_selections"
    follow_ons = ("permute_blocks",)
    chance = 0.3

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        trues = ctx.known_true_ids()
        falses = ctx.known_false_ids()
        for function in ctx.module.functions:
            for block in function.blocks[1:]:
                negate = bool(falses) and rng.random() < 0.5
                pool = falses if negate else trues
                if not pool:
                    continue
                out.append(
                    WrapRegionInSelection(
                        ids.take(), block.label_id, rng.choice(pool), negate
                    )
                )
        rng.shuffle(out)
        return out[:5]


class PassToggleControls(FuzzerPass):
    name = "toggle_controls"
    follow_ons = ("inline_functions",)
    chance = 0.4

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for function in ctx.module.functions:
            choices = [c for c in FUNCTION_CONTROLS if c != function.control]
            out.append(ToggleFunctionControl(function.result_id, rng.choice(choices)))
        rng.shuffle(out)
        return out[:4]


class PassSwapOperands(FuzzerPass):
    name = "swap_operands"
    follow_ons = ()
    chance = 0.3

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for inst in self._body_instructions(ctx):
            if inst.opcode in COMMUTATIVE_OPS:
                out.append(SwapCommutableOperands(inst.result_id))
        rng.shuffle(out)
        return out[:6]



class PassOutlineFunctions(FuzzerPass):
    """Extract instruction runs into fresh functions (the inverse of
    inlining); outlined functions feed the call/inline interaction chain."""

    name = "outline_functions"
    follow_ons = ("toggle_controls", "inline_functions", "add_parameters")
    chance = 0.3
    max_applications = 2

    def candidates(self, ctx, rng, ids):
        out: list[Transformation] = []
        for function in ctx.module.functions:
            for block in function.blocks:
                with_results = [
                    i for i in block.instructions
                    if i.result_id is not None
                    and i.opcode not in (Op.Phi, Op.Variable)
                ]
                if len(with_results) < 2:
                    continue
                start = rng.randrange(len(with_results))
                end = min(len(with_results) - 1, start + rng.randint(0, 3))
                first = with_results[start]
                last = with_results[end]
                span = block.instructions[
                    block.instructions.index(first) : block.instructions.index(last) + 1
                ]
                defined = [i.result_id for i in span if i.result_id is not None]
                id_map = {d: ids.take() for d in defined}
                # Over-provision parameters: every function-local id any span
                # instruction uses might need one; extras are ignored.
                param_map = {}
                for inst in span:
                    for used in inst.used_ids():
                        if used not in defined and used not in param_map:
                            param_map[used] = ids.take()
                out.append(
                    OutlineFunction(
                        first_id=first.result_id,
                        last_id=last.result_id,
                        fresh_function_id=ids.take(),
                        fresh_label_id=ids.take(),
                        fresh_function_type_id=ids.take(),
                        id_map=id_map,
                        param_map=param_map,
                    )
                )
        rng.shuffle(out)
        return out[:3]


# -- donor bank -------------------------------------------------------------------


@dataclass
class Donation:
    """A serialized donor function ready for ``AddFunction``."""

    name: str
    declarations: list[str]
    function_lines: list[str]
    donor_ids: list[int]
    livesafe_eligible: bool
    livesafe_id_need: int

    def all_donor_ids(self) -> list[int]:
        return list(self.donor_ids)


class DonorBank:
    """Prepares donor functions from donor modules (§3.2's donor corpus).

    Serialization happens once, up front; ``AddFunction`` instances embed the
    text so donors are not needed at reduction time.
    """

    def __init__(self, donor_modules) -> None:
        self.donations: list[Donation] = []
        for program in donor_modules:
            module = program.module
            for function in module.functions:
                if function.result_id == module.entry_point_id:
                    continue
                donation = self._prepare(program.name, module, function)
                if donation is not None:
                    self.donations.append(donation)

    def sample(self, rng: random.Random) -> Donation | None:
        if not self.donations:
            return None
        return rng.choice(self.donations)

    def _prepare(self, donor_name: str, module, function) -> Donation | None:
        # Collect the global declarations the function needs, in order.
        needed: set[int] = set()
        for inst in function.all_instructions():
            needed.update(inst.used_ids())
        decls: list[Instruction] = []
        changed = True
        global_by_id = {
            inst.result_id: inst
            for inst in module.global_insts
            if inst.result_id is not None
        }
        while changed:
            changed = False
            for gid, inst in global_by_id.items():
                if gid in needed:
                    for used in inst.used_ids():
                        if used not in needed:
                            needed.add(used)
                            changed = True
        for inst in module.global_insts:
            if inst.result_id in needed:
                if inst.opcode is Op.Variable:
                    return None  # functions touching module globals can't donate
                decls.append(inst)

        obstacles = livesafe_obstacles(function)
        livesafe_eligible = not obstacles
        pseudo = module.id_bound
        extra_decls: list[Instruction] = []
        if livesafe_eligible:
            extra_decls, pseudo = self._livesafe_decls(decls, pseudo)

        all_decls = decls + extra_decls
        declaration_lines = [format_instruction(i) for i in all_decls]
        function_lines = [format_instruction(function.inst)]
        function_lines += [format_instruction(p) for p in function.params]
        for block in function.blocks:
            function_lines.append(f"%{block.label_id} = OpLabel")
            function_lines += [format_instruction(i) for i in block.all_instructions()]
        function_lines.append("OpFunctionEnd")

        donor_ids = [i.result_id for i in all_decls if i.result_id is not None]
        donor_ids += [
            i.result_id for i in function.all_instructions() if i.result_id is not None
        ]
        return Donation(
            name=f"{donor_name}_{module.name_of(function.result_id) or function.result_id}",
            declarations=declaration_lines,
            function_lines=function_lines,
            donor_ids=donor_ids,
            livesafe_eligible=livesafe_eligible,
            livesafe_id_need=count_fresh_ids_needed(function) if livesafe_eligible else 0,
        )

    def _livesafe_decls(
        self, decls: list[Instruction], pseudo: int
    ) -> tuple[list[Instruction], int]:
        """Synthesize bool/int/pointer types and 0/1/8 constants with
        donor-local pseudo ids, reusing declarations already present."""
        extra: list[Instruction] = []

        def find(opcode: Op, operands: list | None = None, type_id: int | None = None):
            for inst in decls + extra:
                if inst.opcode is not opcode:
                    continue
                if operands is not None and inst.operands != operands:
                    continue
                if type_id is not None and inst.type_id != type_id:
                    continue
                return inst.result_id
            return None

        def ensure(opcode: Op, operands: list, type_id: int | None = None) -> int:
            nonlocal pseudo
            existing = find(opcode, operands, type_id)
            if existing is not None:
                return existing
            inst = Instruction(opcode, pseudo, type_id, list(operands))
            pseudo += 1
            extra.append(inst)
            return inst.result_id  # type: ignore[return-value]

        bool_ty = ensure(Op.TypeBool, [])
        int_ty = find(Op.TypeInt, [32, True]) or ensure(Op.TypeInt, [32, True])
        ensure(Op.TypePointer, ["Function", int_ty])
        ensure(Op.Constant, [0], int_ty)
        ensure(Op.Constant, [1], int_ty)
        ensure(Op.Constant, [8], int_ty)
        _ = bool_ty
        return extra, pseudo


def build_passes(donor_bank: DonorBank) -> list[FuzzerPass]:
    """All fuzzer passes, donor-dependent ones included."""
    return [
        PassAddTypesAndConstants(),
        PassAddVariables(),
        PassSplitBlocks(),
        PassAddDeadBlocks(),
        PassKillDeadBranches(),
        PassAddLoadsStores(),
        PassAddSynonyms(),
        PassPermuteOperands(),
        PassOutlineFunctions(),
        PassAddComposites(),
        PassReplaceSynonyms(),
        PassReplaceIrrelevant(),
        PassObfuscate(),
        PassAddParameters(),
        PassAddFunctions(donor_bank),
        PassFunctionCalls(),
        PassInlineFunctions(),
        PassPermuteBlocks(),
        PassPropagateUp(),
        PassWrapSelections(),
        PassToggleControls(),
        PassSwapOperands(),
    ]
