"""Live-safe function rewriting (§3.2).

A *live-safe* function can be called from any program point without changing
the output of the computation: its loops are truncated by an iteration
limit, its divisions are guarded against zero divisors, and (in full
spirv-fuzz) memory accesses are clamped in-bounds and ``OpKill`` removed.
Our ``AddFunction`` applies this rewriting to donor functions; donors with
``OpKill`` or non-constant access-chain indices are simply not eligible
(checked by :func:`livesafe_obstacles`).

The rewriting consumes fresh ids from a caller-supplied list in a
deterministic order, so it can be replayed exactly during reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.analysis.cfg import Cfg
from repro.ir.module import Function, Instruction
from repro.ir.opcodes import Op

#: Maximum loop iterations a live-safe function may perform per loop header.
LOOP_LIMIT = 8


@dataclass(frozen=True)
class LivesafeRequirements:
    """Ids of module-level helpers the rewriting references.  The caller
    (``AddFunction``) must ensure these declarations exist."""

    bool_type_id: int
    int_type_id: int
    int_function_ptr_type_id: int
    zero_id: int
    one_id: int
    limit_id: int


def livesafe_obstacles(function: Function) -> list[str]:
    """Reasons *function* cannot be made live-safe (empty means eligible)."""
    obstacles: list[str] = []
    for block in function.blocks:
        if block.terminator is not None and block.terminator.opcode is Op.Kill:
            obstacles.append("contains OpKill")
        for inst in block.instructions:
            if inst.opcode is Op.AccessChain:
                # Clamping of dynamic indices is not implemented; constant
                # indices are validated in-bounds already.
                obstacles.append("contains OpAccessChain (dynamic clamping unsupported)")
    cfg = Cfg.build(function)
    for _, header in cfg.back_edges():
        header_block = function.block(header)
        if (
            header_block.terminator is None
            or header_block.terminator.opcode is not Op.BranchConditional
        ):
            obstacles.append(f"loop header %{header} has no conditional exit")
    return obstacles


def count_fresh_ids_needed(function: Function) -> int:
    """Fresh ids :func:`make_livesafe` will consume for *function*."""
    needed = 0
    for block in function.blocks:
        for inst in block.instructions:
            if inst.opcode in (Op.SDiv, Op.SRem):
                needed += 2  # is-zero compare + select
    cfg = Cfg.build(function)
    headers = sorted({header for _, header in cfg.back_edges()})
    for header_label in headers:
        # counter var, load, increment, compare, combine (+ negate when the
        # loop continues on the true side).
        needed += 5
        term = function.block(header_label).terminator
        if term is not None and term.opcode is Op.BranchConditional:
            if _reaches(cfg, int(term.operands[1]), header_label):
                needed += 1
    return needed


def make_livesafe(
    function: Function,
    requirements: LivesafeRequirements,
    fresh_ids: list[int],
    claim,
) -> None:
    """Rewrite *function* in place to be live-safe.

    ``claim`` is called on each consumed id (``Module.claim_id``).  The
    caller must have checked :func:`livesafe_obstacles` and provided at least
    :func:`count_fresh_ids_needed` ids.
    """
    cursor = 0

    def take() -> int:
        nonlocal cursor
        value = int(fresh_ids[cursor])
        cursor += 1
        return claim(value)

    _guard_divisions(function, requirements, take)
    _limit_loops(function, requirements, take)


def _guard_divisions(function: Function, req: LivesafeRequirements, take) -> None:
    """``x / d`` becomes ``x / select(d == 0, 1, d)``."""
    for block in function.blocks:
        index = 0
        while index < len(block.instructions):
            inst = block.instructions[index]
            if inst.opcode in (Op.SDiv, Op.SRem):
                divisor = int(inst.operands[1])
                is_zero = take()
                safe = take()
                block.instructions.insert(
                    index,
                    Instruction(Op.IEqual, is_zero, req.bool_type_id, [divisor, req.zero_id]),
                )
                block.instructions.insert(
                    index + 1,
                    Instruction(
                        Op.Select, safe, req.int_type_id, [is_zero, req.one_id, divisor]
                    ),
                )
                inst.operands[1] = safe
                index += 3
            else:
                index += 1


def _limit_loops(function: Function, req: LivesafeRequirements, take) -> None:
    """Force each loop to exit after :data:`LOOP_LIMIT` iterations."""
    cfg = Cfg.build(function)
    headers = sorted({header for _, header in cfg.back_edges()})
    if not headers:
        return
    entry = function.entry_block()
    for header_label in headers:
        header = function.block(header_label)
        term = header.terminator
        assert term is not None and term.opcode is Op.BranchConditional

        counter_var = take()
        var_inst = Instruction(
            Op.Variable,
            counter_var,
            req.int_function_ptr_type_id,
            ["Function", req.zero_id],
        )
        position = 0
        while (
            position < len(entry.instructions)
            and entry.instructions[position].opcode is Op.Variable
        ):
            position += 1
        entry.instructions.insert(position, var_inst)

        loaded = take()
        bumped = take()
        exceeded = take()
        combined = take()
        header.instructions.extend(
            [
                Instruction(Op.Load, loaded, req.int_type_id, [counter_var]),
                Instruction(Op.IAdd, bumped, req.int_type_id, [loaded, req.one_id]),
                Instruction(Op.Store, None, None, [counter_var, bumped]),
                Instruction(
                    Op.SGreaterThanEqual,
                    exceeded,
                    req.bool_type_id,
                    [loaded, req.limit_id],
                ),
            ]
        )
        old_cond = int(term.operands[0])
        true_target = int(term.operands[1])
        # Determine which side continues the loop (reaches the header again).
        if _reaches(cfg, true_target, header_label):
            # Stay-in-loop on true: exit when the counter trips.
            header.instructions.append(
                Instruction(
                    Op.LogicalAnd,
                    combined,
                    req.bool_type_id,
                    [old_cond, _negated(header, req, exceeded, take)],
                )
            )
        else:
            header.instructions.append(
                Instruction(
                    Op.LogicalOr, combined, req.bool_type_id, [old_cond, exceeded]
                )
            )
        term.operands[0] = combined


def _negated(header, req: LivesafeRequirements, value_id: int, take) -> int:
    negated = take()
    header.instructions.append(
        Instruction(Op.LogicalNot, negated, req.bool_type_id, [value_id])
    )
    return negated


def _reaches(cfg: Cfg, start: int, goal: int) -> bool:
    seen = {start}
    stack = [start]
    while stack:
        label = stack.pop()
        if label == goal:
            return True
        for succ in cfg.successors.get(label, []):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return False
