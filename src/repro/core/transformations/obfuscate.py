"""Obfuscating transformations: they hide from the compiler facts the fuzzer
knows to be true (constant values, input values, irrelevance)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import Context
from repro.core.transformation import Transformation
from repro.interp.values import f32, srem, wrap_i32
from repro.ir import types as tys
from repro.ir.module import Instruction
from repro.ir.opcodes import COMMUTATIVE_OPS, Op, OperandKind

#: Operand positions whose replacement could introduce UB even when the
#: current value is irrelevant: divisor slots and access-chain indices.
_GUARDED_POSITIONS = {
    Op.SDiv: {1},
    Op.SRem: {1},
}


def _locate_use(ctx: Context, instruction_id: int):
    located = ctx.module.containing_block(instruction_id)
    if located is None:
        return None
    function, block = located
    inst = next(i for i in block.instructions if i.result_id == instruction_id)
    return function, block, inst


def _id_slot(inst: Instruction, operand_index: int) -> int | None:
    slots = inst.operand_slots()
    if not 0 <= operand_index < len(slots):
        return None
    kind, operand = slots[operand_index]
    if kind is not OperandKind.ID:
        return None
    return int(operand)


@dataclass
class ReplaceIrrelevantId(Transformation):
    """Replace a use whose value cannot affect output with any type-correct
    available id.  The use qualifies through an ``Irrelevant`` fact on the
    current operand or an ``IrrelevantUse`` fact on the position."""

    type_name = "ReplaceIrrelevantId"

    instruction_id: int
    operand_index: int
    replacement_id: int

    def precondition(self, ctx: Context) -> bool:
        located = _locate_use(ctx, self.instruction_id)
        if located is None:
            return False
        function, block, inst = located
        if inst.opcode in (Op.Phi, Op.Variable):
            return False
        if self.operand_index in _GUARDED_POSITIONS.get(inst.opcode, ()):  # UB guard
            return False
        if inst.opcode is Op.AccessChain and self.operand_index >= 1:
            return False
        if inst.opcode is Op.FunctionCall and self.operand_index == 0:
            return False
        current = _id_slot(inst, self.operand_index)
        if current is None or current == self.replacement_id:
            return False
        if not (
            ctx.facts.is_irrelevant(current)
            or ctx.facts.is_irrelevant_use(self.instruction_id, self.operand_index)
        ):
            return False
        if ctx.value_type(current) != ctx.value_type(self.replacement_id):
            return False
        # Pointer-typed irrelevant uses must stay irrelevant-pointee (the
        # callee may store through them).
        if isinstance(ctx.value_type(current), tys.PointerType):
            if not ctx.facts.is_irrelevant_pointee(self.replacement_id):
                return False
        availability = ctx.availability(function)
        return availability.available_at(self.replacement_id, block.label_id, inst)

    def apply(self, ctx: Context) -> None:
        located = _locate_use(ctx, self.instruction_id)
        assert located is not None
        _, _, inst = located
        inst.operands[self.operand_index] = self.replacement_id
        # The new use is just as irrelevant as the old one.
        ctx.facts.add_irrelevant_use(self.instruction_id, self.operand_index)


@dataclass
class ReplaceConstantWithUniform(Transformation):
    """Replace a use of a scalar constant with a load from a uniform whose
    bound input value is known to equal it (§3.2) — obfuscating e.g. the fact
    that a block is dead by making reachability depend on an input."""

    type_name = "ReplaceConstantWithUniform"

    instruction_id: int
    operand_index: int
    uniform_id: int
    fresh_load_id: int

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_load_id):
            return False
        located = _locate_use(ctx, self.instruction_id)
        if located is None:
            return False
        _, block, inst = located
        if inst.opcode in (Op.Phi, Op.Variable):
            return False
        if inst.opcode is Op.AccessChain and self.operand_index >= 1:
            return False
        current = _id_slot(inst, self.operand_index)
        if current is None:
            return False
        const = ctx.defs().get(current)
        if const is None or const.opcode not in (
            Op.Constant,
            Op.ConstantTrue,
            Op.ConstantFalse,
        ):
            return False
        uniform = ctx.defs().get(self.uniform_id)
        if uniform is None or uniform.opcode is not Op.Variable:
            return False
        ptr_ty = ctx.types().get(uniform.type_id)
        if not isinstance(ptr_ty, tys.PointerType):
            return False
        if ptr_ty.storage is not tys.StorageClass.UNIFORM:
            return False
        if ptr_ty.pointee != ctx.value_type(current):
            return False
        name = ctx.module.name_of(self.uniform_id)
        if name is None or name not in ctx.inputs:
            return False
        bound = ctx.inputs[name]
        const_value = ctx.module.constant_value(current)
        if isinstance(ptr_ty.pointee, tys.BoolType):
            return isinstance(bound, bool) and bound == const_value
        if isinstance(ptr_ty.pointee, tys.IntType):
            return isinstance(bound, int) and not isinstance(bound, bool) and int(
                bound
            ) == const_value
        if isinstance(ptr_ty.pointee, tys.FloatType):
            try:
                return f32(float(bound)) == f32(float(const_value))  # type: ignore[arg-type]
            except (TypeError, ValueError):
                return False
        return False

    def apply(self, ctx: Context) -> None:
        located = _locate_use(ctx, self.instruction_id)
        assert located is not None
        _, block, inst = located
        uniform = ctx.defs()[self.uniform_id]
        ptr_ty = ctx.types()[uniform.type_id]
        assert isinstance(ptr_ty, tys.PointerType)
        pointee_type_id = ctx.module.find_type_id(ptr_ty.pointee)
        assert pointee_type_id is not None
        ctx.module.claim_id(self.fresh_load_id)
        load = Instruction(
            Op.Load, self.fresh_load_id, pointee_type_id, [self.uniform_id]
        )
        index = block.instructions.index(inst)
        block.instructions.insert(index, load)
        inst.operands[self.operand_index] = self.fresh_load_id


@dataclass
class ObfuscateConstant(Transformation):
    """Replace a use of a constant with a tiny computation the fuzzer has
    verified (using true semantics) to produce the same value.

    Forms (one type, many shapes — §2.3's "common types" principle):

    * ``bool-int-eq`` / ``bool-float-eq``: ``true`` becomes ``c == c`` (or
      ``false`` becomes ``c != c``) over an existing scalar constant.
    * ``int-add-pair``: an int constant becomes ``c1 + c2`` where
      ``wrap(c1 + c2)`` equals it (the pair may deliberately overflow).
    * ``int-srem-pair``: an int constant becomes ``c1 % c2`` under truncating
      remainder semantics.
    """

    type_name = "ObfuscateConstant"

    instruction_id: int
    operand_index: int
    form: str
    fresh_id: int
    aux_const_ids: list[int] = field(default_factory=list)

    def _aux_values(self, ctx: Context) -> list | None:
        values = []
        for const_id in self.aux_const_ids:
            inst = ctx.defs().get(int(const_id))
            if inst is None or inst.opcode is not Op.Constant:
                return None
            values.append(inst.operands[0])
        return values

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        located = _locate_use(ctx, self.instruction_id)
        if located is None:
            return False
        _, block, inst = located
        if inst.opcode in (Op.Phi, Op.Variable):
            return False
        if inst.opcode is Op.AccessChain and self.operand_index >= 1:
            return False
        current = _id_slot(inst, self.operand_index)
        if current is None:
            return False
        const = ctx.defs().get(current)
        if const is None:
            return False
        aux = self._aux_values(ctx)
        if aux is None:
            return False

        if self.form in ("bool-int-eq", "bool-float-eq"):
            if const.opcode not in (Op.ConstantTrue, Op.ConstantFalse):
                return False
            if len(aux) != 1:
                return False
            if ctx.module.find_type_id(tys.BoolType()) is None:
                return False
            want = tys.IntType if self.form == "bool-int-eq" else tys.FloatType
            aux_ty = ctx.value_type(int(self.aux_const_ids[0]))
            if not isinstance(aux_ty, want):
                return False
            if self.form == "bool-float-eq":
                # NaN would make c == c false; constants are finite literals,
                # but keep the check explicit.
                value = float(aux[0])
                return value == value
            return True
        if self.form == "int-add-pair":
            if const.opcode is not Op.Constant or len(aux) != 2:
                return False
            if not isinstance(ctx.value_type(current), tys.IntType):
                return False
            if not all(
                isinstance(ctx.value_type(int(a)), tys.IntType)
                for a in self.aux_const_ids
            ):
                return False
            return wrap_i32(int(aux[0]) + int(aux[1])) == int(const.operands[0])
        if self.form == "int-srem-pair":
            if const.opcode is not Op.Constant or len(aux) != 2:
                return False
            if not isinstance(ctx.value_type(current), tys.IntType):
                return False
            if not all(
                isinstance(ctx.value_type(int(a)), tys.IntType)
                for a in self.aux_const_ids
            ):
                return False
            if int(aux[1]) == 0:
                return False
            return srem(int(aux[0]), int(aux[1])) == int(const.operands[0])
        return False

    def apply(self, ctx: Context) -> None:
        located = _locate_use(ctx, self.instruction_id)
        assert located is not None
        _, block, inst = located
        ctx.module.claim_id(self.fresh_id)
        a = [int(x) for x in self.aux_const_ids]
        current = _id_slot(inst, self.operand_index)
        assert current is not None
        const = ctx.defs()[current]
        if self.form in ("bool-int-eq", "bool-float-eq"):
            bool_type_id = ctx.module.find_type_id(tys.BoolType())
            assert bool_type_id is not None
            if self.form == "bool-int-eq":
                op = Op.IEqual if const.opcode is Op.ConstantTrue else Op.INotEqual
            else:
                op = Op.FOrdEqual if const.opcode is Op.ConstantTrue else Op.FOrdNotEqual
            new = Instruction(op, self.fresh_id, bool_type_id, [a[0], a[0]])
        else:
            int_type_id = ctx.defs()[a[0]].type_id
            assert int_type_id is not None
            op = Op.IAdd if self.form == "int-add-pair" else Op.SRem
            new = Instruction(op, self.fresh_id, int_type_id, [a[0], a[1]])
        index = block.instructions.index(inst)
        block.instructions.insert(index, new)
        inst.operands[self.operand_index] = self.fresh_id


@dataclass
class WrapInSelect(Transformation):
    """Route a use through ``OpSelect`` on a constant condition: the default
    form produces ``Select(true, x, other)``, the negated form
    ``Select(false, other, x)`` — one type, two forms."""

    type_name = "WrapInSelect"

    instruction_id: int
    operand_index: int
    fresh_id: int
    condition_id: int
    other_id: int
    negate: bool = False

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        located = _locate_use(ctx, self.instruction_id)
        if located is None:
            return False
        function, block, inst = located
        if inst.opcode in (Op.Phi, Op.Variable):
            return False
        if inst.opcode is Op.AccessChain:
            return False  # pointer/index operands must not route through Select
        if inst.opcode in (Op.Load, Op.Store) and self.operand_index == 0:
            return False
        if inst.opcode is Op.FunctionCall and self.operand_index == 0:
            return False
        current = _id_slot(inst, self.operand_index)
        if current is None:
            return False
        current_ty = ctx.value_type(current)
        if current_ty is None or isinstance(current_ty, tys.PointerType):
            return False
        cond = ctx.defs().get(self.condition_id)
        if cond is None:
            return False
        wanted = Op.ConstantFalse if self.negate else Op.ConstantTrue
        if cond.opcode is not wanted:
            return False
        if ctx.value_type(self.other_id) != current_ty:
            return False
        availability = ctx.availability(function)
        return availability.available_at(
            self.other_id, block.label_id, inst
        ) and availability.available_at(current, block.label_id, inst)

    def apply(self, ctx: Context) -> None:
        located = _locate_use(ctx, self.instruction_id)
        assert located is not None
        _, block, inst = located
        current = _id_slot(inst, self.operand_index)
        assert current is not None
        type_id = ctx.defs()[current].type_id
        ctx.module.claim_id(self.fresh_id)
        if self.negate:
            arms = [self.other_id, current]
        else:
            arms = [current, self.other_id]
        select = Instruction(
            Op.Select, self.fresh_id, type_id, [self.condition_id, *arms]
        )
        index = block.instructions.index(inst)
        block.instructions.insert(index, select)
        inst.operands[self.operand_index] = self.fresh_id


@dataclass
class SwapCommutableOperands(Transformation):
    """Swap the operands of a commutative instruction."""

    type_name = "SwapCommutableOperands"

    instruction_id: int

    def precondition(self, ctx: Context) -> bool:
        located = _locate_use(ctx, self.instruction_id)
        if located is None:
            return False
        _, _, inst = located
        return inst.opcode in COMMUTATIVE_OPS

    def apply(self, ctx: Context) -> None:
        located = _locate_use(ctx, self.instruction_id)
        assert located is not None
        _, _, inst = located
        inst.operands[0], inst.operands[1] = inst.operands[1], inst.operands[0]
