"""Function-level transformations: control toggling, parameters, calls,
donor import, and inlining."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import Context
from repro.core.livesafe import (
    LivesafeRequirements,
    count_fresh_ids_needed,
    livesafe_obstacles,
    make_livesafe,
)
from repro.core.transformation import Transformation
from repro.core.transformations.insertion import InsertBefore, insert_instruction
from repro.ir import types as tys
from repro.ir.module import Function, Instruction
from repro.ir.opcodes import FUNCTION_CONTROLS, Op, op_info
from repro.ir.parser import ParseError, module_from_instructions, parse_instruction
from repro.ir.rewrite import InlinePlan, callee_ids_requiring_fresh, inline_call


@dataclass
class ToggleFunctionControl(Transformation):
    """Change a function's control mask (None / Inline / DontInline) — pure
    hints, so always semantics-preserving.  A one-instruction delta of this
    type reproduces the paper's Figure 3 SwiftShader bug."""

    type_name = "ToggleFunctionControl"

    function_id: int
    new_control: str

    def precondition(self, ctx: Context) -> bool:
        if self.new_control not in FUNCTION_CONTROLS:
            return False
        if not ctx.module.has_function(self.function_id):
            return False
        return ctx.module.get_function(self.function_id).control != self.new_control

    def apply(self, ctx: Context) -> None:
        ctx.module.get_function(self.function_id).control = self.new_control


@dataclass
class AddParameter(Transformation):
    """Add a parameter to a non-entry function, passing a default constant at
    every call site.  The parameter's value is recorded ``Irrelevant`` and
    each new call argument is an ``IrrelevantUse`` (§3.2/§3.3), so later
    passes can replace them with interesting expressions that the reducer
    can strip back to the constant."""

    type_name = "AddParameter"

    function_id: int
    fresh_parameter_id: int
    type_id: int
    default_const_id: int
    fresh_function_type_id: int

    def precondition(self, ctx: Context) -> bool:
        if not ctx.all_fresh_distinct(
            [self.fresh_parameter_id, self.fresh_function_type_id]
        ):
            return False
        if not ctx.module.has_function(self.function_id):
            return False
        if self.function_id == ctx.module.entry_point_id:
            return False
        ty = ctx.types().get(self.type_id)
        if ty is None or isinstance(ty, (tys.VoidType, tys.PointerType, tys.FunctionType)):
            return False
        const = ctx.defs().get(self.default_const_id)
        if const is None or not op_info(const.opcode).is_constant_decl:
            return False
        if const.opcode is Op.Undef:
            return False
        return ctx.value_type(self.default_const_id) == ty

    def apply(self, ctx: Context) -> None:
        function = ctx.module.get_function(self.function_id)
        old_fn_ty = ctx.types()[function.function_type_id]
        assert isinstance(old_fn_ty, tys.FunctionType)
        new_fn_ty = tys.FunctionType(
            old_fn_ty.return_type, old_fn_ty.params + (ctx.types()[self.type_id],)
        )
        new_type_id = ctx.module.find_type_id(new_fn_ty)
        if new_type_id is None:
            new_type_id = ctx.module.claim_id(self.fresh_function_type_id)
            old_decl = ctx.defs()[function.function_type_id]
            decl = Instruction(
                Op.TypeFunction,
                new_type_id,
                None,
                [*old_decl.operands, self.type_id],
            )
            ctx.module.global_insts.append(decl)

        ctx.module.claim_id(self.fresh_parameter_id)
        function.params.append(
            Instruction(Op.FunctionParameter, self.fresh_parameter_id, self.type_id)
        )
        function.inst.operands[1] = new_type_id

        for caller in ctx.module.functions:
            for block in caller.blocks:
                for inst in block.instructions:
                    if (
                        inst.opcode is Op.FunctionCall
                        and int(inst.operands[0]) == self.function_id
                    ):
                        inst.operands.append(self.default_const_id)
                        assert inst.result_id is not None
                        ctx.facts.add_irrelevant_use(
                            inst.result_id, len(inst.operands) - 1
                        )
        ctx.facts.add_irrelevant(self.fresh_parameter_id)


@dataclass
class PermuteFunctionParameters(Transformation):
    """Permute a non-entry function's parameters, updating its function type
    and every call site consistently.

    ``permutation[i]`` gives the *old* index of the parameter now at
    position ``i``.  Requires a fresh id for the permuted function type when
    it does not already exist.
    """

    type_name = "PermuteFunctionParameters"

    function_id: int
    permutation: list[int] = field(default_factory=list)
    fresh_function_type_id: int = 0

    def precondition(self, ctx: Context) -> bool:
        if not ctx.module.has_function(self.function_id):
            return False
        if self.function_id == ctx.module.entry_point_id:
            return False
        function = ctx.module.get_function(self.function_id)
        arity = len(function.params)
        if arity < 2:
            return False
        if sorted(int(i) for i in self.permutation) != list(range(arity)):
            return False
        if [int(i) for i in self.permutation] == list(range(arity)):
            return False  # identity permutations add nothing
        old_fn_ty = ctx.types().get(function.function_type_id)
        if not isinstance(old_fn_ty, tys.FunctionType):
            return False
        new_fn_ty = tys.FunctionType(
            old_fn_ty.return_type,
            tuple(old_fn_ty.params[int(i)] for i in self.permutation),
        )
        if ctx.module.find_type_id(new_fn_ty) is None:
            return ctx.is_fresh(self.fresh_function_type_id)
        return True

    def apply(self, ctx: Context) -> None:
        function = ctx.module.get_function(self.function_id)
        order = [int(i) for i in self.permutation]
        old_fn_ty = ctx.types()[function.function_type_id]
        assert isinstance(old_fn_ty, tys.FunctionType)
        new_fn_ty = tys.FunctionType(
            old_fn_ty.return_type, tuple(old_fn_ty.params[i] for i in order)
        )
        new_type_id = ctx.module.find_type_id(new_fn_ty)
        if new_type_id is None:
            new_type_id = ctx.module.claim_id(self.fresh_function_type_id)
            old_decl = ctx.defs()[function.function_type_id]
            params = [int(old_decl.operands[1 + i]) for i in order]
            ctx.module.global_insts.append(
                Instruction(
                    Op.TypeFunction,
                    new_type_id,
                    None,
                    [int(old_decl.operands[0]), *params],
                )
            )
        function.params = [function.params[i] for i in order]
        function.inst.operands[1] = new_type_id
        for caller in ctx.module.functions:
            for block in caller.blocks:
                for inst in block.instructions:
                    if (
                        inst.opcode is Op.FunctionCall
                        and int(inst.operands[0]) == self.function_id
                    ):
                        args = inst.operands[1:]
                        inst.operands = [inst.operands[0]] + [args[i] for i in order]
                        # IrrelevantUse facts are positional: permute them in
                        # lockstep with the arguments or a later
                        # ReplaceIrrelevantId could rewrite a *relevant* slot.
                        assert inst.result_id is not None
                        old_flags = [
                            ctx.facts.is_irrelevant_use(inst.result_id, 1 + i)
                            for i in range(len(args))
                        ]
                        for i in range(len(args)):
                            ctx.facts.irrelevant_uses.discard(
                                (inst.result_id, 1 + i)
                            )
                        for new_index, old_index in enumerate(order):
                            if old_flags[old_index]:
                                ctx.facts.add_irrelevant_use(
                                    inst.result_id, 1 + new_index
                                )


def _calls_transitively(ctx: Context, caller_id: int, target_id: int) -> bool:
    """Does *caller_id* (transitively) call *target_id*?"""
    seen: set[int] = set()
    stack = [caller_id]
    while stack:
        current = stack.pop()
        if current == target_id:
            return True
        if current in seen or not ctx.module.has_function(current):
            continue
        seen.add(current)
        for block in ctx.module.get_function(current).blocks:
            for inst in block.instructions:
                if inst.opcode is Op.FunctionCall:
                    stack.append(int(inst.operands[0]))
    return False


@dataclass
class FunctionCall(Transformation):
    """Add a call: to a ``LiveSafe`` function from anywhere, or to *any*
    function from a dead block (§3.2).  Arguments are typically trivial
    constants, recorded as ``IrrelevantUse`` so later passes can enrich them.
    Pointer arguments to live-safe callees must satisfy
    ``IrrelevantPointee``."""

    type_name = "FunctionCall"

    fresh_id: int
    callee_id: int
    arg_ids: list[int] = field(default_factory=list)
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        if not ctx.module.has_function(self.callee_id):
            return False
        callee = ctx.module.get_function(self.callee_id)
        fn_ty = ctx.types().get(callee.function_type_id)
        if not isinstance(fn_ty, tys.FunctionType):
            return False
        if len(self.arg_ids) != len(fn_ty.params):
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, index = located
        in_dead_block = ctx.facts.is_dead_block(block.label_id)
        if not in_dead_block:
            if not ctx.facts.is_livesafe(self.callee_id):
                return False
            # The callee must not reach back into the function we are calling
            # from, or a live call could recurse forever.
            if _calls_transitively(ctx, self.callee_id, function.result_id):
                return False
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        for arg, param_ty in zip(self.arg_ids, fn_ty.params):
            if ctx.value_type(int(arg)) != param_ty:
                return False
            if not availability.available_at(int(arg), block.label_id, anchor):
                return False
            if isinstance(param_ty, tys.PointerType) and not in_dead_block:
                if not ctx.facts.is_irrelevant_pointee(int(arg)):
                    return False
        return True

    def apply(self, ctx: Context) -> None:
        callee = ctx.module.get_function(self.callee_id)
        located = self.point().resolve(ctx)
        assert located is not None
        ctx.module.claim_id(self.fresh_id)
        inst = Instruction(
            Op.FunctionCall,
            self.fresh_id,
            callee.return_type_id,
            [self.callee_id, *[int(a) for a in self.arg_ids]],
        )
        insert_instruction(located, inst)
        ctx.facts.add_irrelevant(self.fresh_id)
        for i in range(len(self.arg_ids)):
            ctx.facts.add_irrelevant_use(self.fresh_id, 1 + i)


@dataclass
class InlineFunction(Transformation):
    """Inline one call site.  Carries an *explicit* mapping from callee ids
    to fresh ids (§3.3's independence example): reduction can drop earlier
    transformations that changed the callee without perturbing the ids this
    transformation introduces."""

    type_name = "InlineFunction"

    call_instruction_id: int
    id_map: dict[int, int] = field(default_factory=dict)
    continue_label_id: int = 0
    result_phi_id: int = 0

    def precondition(self, ctx: Context) -> bool:
        located = ctx.module.containing_block(self.call_instruction_id)
        if located is None:
            return False
        caller, block = located
        call = next(
            i for i in block.instructions if i.result_id == self.call_instruction_id
        )
        if call.opcode is not Op.FunctionCall:
            return False
        callee_id = int(call.operands[0])
        if not ctx.module.has_function(callee_id):
            return False
        callee = ctx.module.get_function(callee_id)
        if callee.result_id == caller.result_id:
            return False
        mapped = {int(k): int(v) for k, v in self.id_map.items()}
        required = callee_ids_requiring_fresh(callee)
        if not set(required) <= set(mapped):
            return False
        value_returns = sum(
            1
            for b in callee.blocks
            if b.terminator is not None and b.terminator.opcode is Op.ReturnValue
        )
        if value_returns >= 2 and not self.result_phi_id:
            return False
        used_fresh = [mapped[r] for r in required] + [self.continue_label_id]
        if self.result_phi_id:
            used_fresh.append(self.result_phi_id)
        return ctx.all_fresh_distinct([int(v) for v in used_fresh])

    def apply(self, ctx: Context) -> None:
        located = ctx.module.containing_block(self.call_instruction_id)
        assert located is not None
        caller, block = located
        call = next(
            i for i in block.instructions if i.result_id == self.call_instruction_id
        )
        callee = ctx.module.get_function(int(call.operands[0]))
        mapped = {int(k): int(v) for k, v in self.id_map.items()}
        required = callee_ids_requiring_fresh(callee)
        plan_map = {r: mapped[r] for r in required}
        for fresh in plan_map.values():
            ctx.module.claim_id(fresh)
        ctx.module.claim_id(self.continue_label_id)
        phi_id = self.result_phi_id or None
        if phi_id:
            ctx.module.claim_id(phi_id)
        plan = InlinePlan(plan_map, self.continue_label_id, phi_id)
        call_block_dead = ctx.facts.is_dead_block(block.label_id)
        inline_call(ctx.module, caller, block, call, plan)
        # Dead-block facts transfer to the clones (and to everything inlined
        # into a dead region).
        for old_label, new_label in plan_map.items():
            if callee.has_block(old_label) and (
                call_block_dead or ctx.facts.is_dead_block(old_label)
            ):
                ctx.facts.add_dead_block(new_label)
        if call_block_dead:
            ctx.facts.add_dead_block(self.continue_label_id)
            for old_label in [b.label_id for b in callee.blocks]:
                ctx.facts.add_dead_block(plan_map[old_label])


@dataclass
class AddFunction(Transformation):
    """Import a donor function (§3.2).  The transformation encodes the full
    function body and any required global declarations as assembly text with
    donor-local ids, plus an explicit donor-id → fresh-id mapping, so donors
    are *not required during reduction* — exactly as in spirv-fuzz.

    With ``make_livesafe`` the body is rewritten per :mod:`repro.core.livesafe`
    (loop limiting, division guarding) and a ``LiveSafe`` fact is recorded.
    ``livesafe_ids`` supplies the fresh ids that rewriting consumes.
    """

    type_name = "AddFunction"

    declarations: list[str] = field(default_factory=list)
    function_lines: list[str] = field(default_factory=list)
    id_map: dict[int, int] = field(default_factory=dict)
    make_livesafe: bool = False
    livesafe_ids: list[int] = field(default_factory=list)
    name: str = "donated"

    # -- parsing helpers ---------------------------------------------------------

    def _parse(self) -> tuple[list[Instruction], Function] | None:
        try:
            decls = [parse_instruction(line) for line in self.declarations]
            body = [parse_instruction(line) for line in self.function_lines]
            shell = module_from_instructions(body)
        except (ParseError, Exception):  # noqa: B014 - any malformed record fails Pre
            return None
        if len(shell.functions) != 1 or shell.global_insts:
            return None
        return decls, shell.functions[0]

    def precondition(self, ctx: Context) -> bool:
        parsed = self._parse()
        if parsed is None:
            return False
        decls, function = parsed
        mapped = {int(k): int(v) for k, v in self.id_map.items()}
        donor_ids = [
            inst.result_id for inst in decls if inst.result_id is not None
        ]
        for inst in function.all_instructions():
            if inst.result_id is not None:
                donor_ids.append(inst.result_id)
        if len(set(donor_ids)) != len(donor_ids):
            return False
        if not set(donor_ids) <= set(mapped):
            return False
        fresh_targets = [mapped[d] for d in donor_ids]
        extra = [int(i) for i in self.livesafe_ids]
        if len(set(fresh_targets + extra)) != len(fresh_targets) + len(extra):
            return False
        if not all(ctx.is_fresh(v) for v in fresh_targets + extra):
            return False
        if self.make_livesafe:
            if livesafe_obstacles(function):
                return False
            if len(extra) < count_fresh_ids_needed(function):
                return False
            if not self._livesafe_requirements_present(decls):
                return False
        # Declarations must be resolvable in order (types/constants only,
        # referencing earlier declarations).
        seen: set[int] = set()
        for inst in decls:
            info = op_info(inst.opcode)
            if not (info.is_type_decl or info.is_constant_decl):
                return False
            for used in inst.used_ids():
                if used not in seen:
                    return False
            if inst.result_id is not None:
                seen.add(inst.result_id)
        # Function body may only reference its own ids and declaration ids.
        for inst in function.all_instructions():
            for used in inst.used_ids():
                if used not in set(donor_ids):
                    return False
        return True

    def _livesafe_requirements_present(self, decls: list[Instruction]) -> bool:
        """The donor declaration list must carry bool/int types, an int
        Function-pointer type, and the 0/1/limit constants."""
        return self._find_livesafe_requirements(decls) is not None

    def _find_livesafe_requirements(self, decls: list[Instruction]):
        bool_ty = int_ty = ptr_ty = zero = one = limit = None
        for inst in decls:
            if inst.opcode is Op.TypeBool:
                bool_ty = inst.result_id
            elif inst.opcode is Op.TypeInt:
                int_ty = inst.result_id
            elif inst.opcode is Op.TypePointer and str(inst.operands[0]) == "Function":
                if int_ty is not None and int(inst.operands[1]) == int_ty:
                    ptr_ty = inst.result_id
            elif inst.opcode is Op.Constant and inst.type_id == int_ty:
                if inst.operands[0] == 0:
                    zero = inst.result_id
                elif inst.operands[0] == 1:
                    one = inst.result_id
                elif inst.operands[0] == 8:
                    limit = inst.result_id
        if None in (bool_ty, int_ty, ptr_ty, zero, one, limit):
            return None
        return bool_ty, int_ty, ptr_ty, zero, one, limit

    def apply(self, ctx: Context) -> None:
        parsed = self._parse()
        assert parsed is not None
        decls, function = parsed
        mapped = {int(k): int(v) for k, v in self.id_map.items()}

        # Resolve declarations: reuse structurally identical existing
        # declarations, otherwise add them under their mapped fresh ids.
        resolved: dict[int, int] = {}
        for decl in decls:
            assert decl.result_id is not None
            donor_id = decl.result_id
            copy = decl.clone()
            copy.remap_ids({**resolved, donor_id: mapped[donor_id]})
            existing = self._find_existing(ctx, copy)
            if existing is not None:
                resolved[donor_id] = existing
            else:
                ctx.module.claim_id(copy.result_id)
                ctx.module.global_insts.append(copy)
                resolved[donor_id] = copy.result_id
            ctx.invalidate()

        # Import the function under fresh ids.
        binding = dict(resolved)
        for inst in function.all_instructions():
            if inst.result_id is not None:
                binding[inst.result_id] = mapped[inst.result_id]
        imported = function.clone()
        imported.inst.remap_ids(binding)
        for param in imported.params:
            param.remap_ids(binding)
        for block in imported.blocks:
            block.label_id = binding[block.label_id]
            for inst in block.instructions:
                inst.remap_ids(binding)
            if block.terminator is not None:
                block.terminator.remap_ids(binding)
        for donor_id in [
            i.result_id for i in function.all_instructions() if i.result_id is not None
        ]:
            ctx.module.claim_id(mapped[donor_id])

        ctx.module.functions.append(imported)
        ctx.module.names[imported.result_id] = self.name
        ctx.invalidate()

        if self.make_livesafe:
            requirements_raw = self._find_livesafe_requirements(decls)
            assert requirements_raw is not None
            ids = tuple(resolved[i] for i in requirements_raw)
            requirements = LivesafeRequirements(*ids)
            make_livesafe(
                imported,
                requirements,
                [int(i) for i in self.livesafe_ids],
                ctx.module.claim_id,
            )
            ctx.facts.add_livesafe(imported.result_id)

    def _find_existing(self, ctx: Context, decl: Instruction) -> int | None:
        """An existing global declaration structurally identical to *decl*
        (ignoring its result id)."""
        for inst in ctx.module.global_insts:
            if (
                inst.opcode == decl.opcode
                and inst.type_id == decl.type_id
                and inst.operands == decl.operands
            ):
                return inst.result_id
        return None
