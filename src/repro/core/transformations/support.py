"""Supporting transformations: types, constants, variables.

These are "not interesting in isolation, but fuzzer passes frequently use
them to enable more interesting transformations" (§3.2); deduplication
ignores them (§3.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import Context
from repro.core.transformation import Transformation
from repro.ir import types as tys
from repro.ir.module import Instruction, Operand
from repro.ir.opcodes import Op

_SCALAR_KINDS = {"void", "bool", "int", "float"}


@dataclass
class AddType(Transformation):
    """Declare a new type.

    ``kind`` selects the declaration; ``params`` holds existing type ids
    and/or literals depending on the kind:

    * ``"void" | "bool" | "int" | "float"`` — no params,
    * ``"vector"`` — [element type id, count],
    * ``"array"`` — [element type id, length],
    * ``"struct"`` — member type ids,
    * ``"pointer"`` — [storage class name, pointee type id].
    """

    type_name = "AddType"

    fresh_id: int
    kind: str
    params: list = field(default_factory=list)

    def _structural(self, ctx: Context) -> tys.Type | None:
        types = ctx.types()

        def ty(index: int) -> tys.Type | None:
            try:
                return types.get(int(self.params[index]))
            except (IndexError, TypeError, ValueError):
                return None

        try:
            if self.kind == "void":
                return tys.VoidType()
            if self.kind == "bool":
                return tys.BoolType()
            if self.kind == "int":
                return tys.IntType()
            if self.kind == "float":
                return tys.FloatType()
            if self.kind == "vector":
                element = ty(0)
                return tys.VectorType(element, int(self.params[1])) if element else None
            if self.kind == "array":
                element = ty(0)
                return tys.ArrayType(element, int(self.params[1])) if element else None
            if self.kind == "struct":
                members = [ty(i) for i in range(len(self.params))]
                if any(m is None for m in members) or not members:
                    return None
                return tys.StructType(tuple(members))  # type: ignore[arg-type]
            if self.kind == "pointer":
                storage = tys.STORAGE_BY_NAME.get(str(self.params[0]))
                pointee = ty(1)
                if storage is None or pointee is None:
                    return None
                return tys.PointerType(storage, pointee)
        except (ValueError, TypeError):
            return None
        return None

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        structural = self._structural(ctx)
        if structural is None:
            return False
        # Keep declarations canonical: at most one declaration per structural
        # type, so other transformations can locate types deterministically.
        return ctx.module.find_type_id(structural) is None

    def apply(self, ctx: Context) -> None:
        structural = self._structural(ctx)
        assert structural is not None
        ctx.module.claim_id(self.fresh_id)
        inst = _type_decl(self.fresh_id, structural, self.params)
        ctx.module.global_insts.append(inst)


def _type_decl(result_id: int, ty: tys.Type, params: list) -> Instruction:
    if isinstance(ty, tys.VoidType):
        return Instruction(Op.TypeVoid, result_id)
    if isinstance(ty, tys.BoolType):
        return Instruction(Op.TypeBool, result_id)
    if isinstance(ty, tys.IntType):
        return Instruction(Op.TypeInt, result_id, None, [ty.width, ty.signed])
    if isinstance(ty, tys.FloatType):
        return Instruction(Op.TypeFloat, result_id, None, [ty.width])
    if isinstance(ty, tys.VectorType):
        return Instruction(Op.TypeVector, result_id, None, [int(params[0]), ty.count])
    if isinstance(ty, tys.ArrayType):
        return Instruction(Op.TypeArray, result_id, None, [int(params[0]), ty.length])
    if isinstance(ty, tys.StructType):
        return Instruction(Op.TypeStruct, result_id, None, [int(p) for p in params])
    if isinstance(ty, tys.PointerType):
        return Instruction(
            Op.TypePointer, result_id, None, [ty.storage.value, int(params[1])]
        )
    raise AssertionError(f"cannot declare {ty}")


@dataclass
class AddConstant(Transformation):
    """Declare a scalar or composite constant.

    For scalars ``value`` is the literal and ``member_ids`` is empty; for
    composites ``member_ids`` lists existing constant ids and ``value`` is
    ignored.
    """

    type_name = "AddConstant"

    fresh_id: int
    type_id: int
    value: Operand = 0
    member_ids: list[int] = field(default_factory=list)
    undef: bool = False

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        ty = ctx.types().get(self.type_id)
        if ty is None:
            return False
        if self.undef:
            # OpUndef reads are defined as the zero value in our semantics,
            # so declaring one is always sound; it is only ever *used* in
            # positions whose value is irrelevant.
            return not isinstance(ty, (tys.VoidType, tys.FunctionType))
        if isinstance(ty, tys.BoolType):
            return isinstance(self.value, bool) and not self.member_ids
        if isinstance(ty, tys.IntType):
            return (
                isinstance(self.value, int)
                and not isinstance(self.value, bool)
                and not self.member_ids
                and -(2**31) <= self.value < 2**31
            )
        if isinstance(ty, tys.FloatType):
            return (
                isinstance(self.value, (int, float))
                and not isinstance(self.value, bool)
                and not self.member_ids
            )
        if ty.is_composite():
            count = tys.composite_member_count(ty)
            if len(self.member_ids) != count:
                return False
            for i, member in enumerate(self.member_ids):
                inst = ctx.defs().get(int(member))
                if inst is None or not inst.opcode.value.startswith("OpConstant"):
                    return False
                if ctx.value_type(int(member)) != tys.composite_member_type(ty, i):
                    return False
            return True
        return False

    def apply(self, ctx: Context) -> None:
        ty = ctx.types()[self.type_id]
        ctx.module.claim_id(self.fresh_id)
        if self.undef:
            inst = Instruction(Op.Undef, self.fresh_id, self.type_id)
            ctx.module.global_insts.append(inst)
            # An undef's (zero) value is by construction never relied upon.
            ctx.facts.add_irrelevant(self.fresh_id)
            return
        if isinstance(ty, tys.BoolType):
            op = Op.ConstantTrue if self.value else Op.ConstantFalse
            inst = Instruction(op, self.fresh_id, self.type_id)
        elif ty.is_composite():
            inst = Instruction(
                Op.ConstantComposite,
                self.fresh_id,
                self.type_id,
                [int(m) for m in self.member_ids],
            )
        else:
            value = self.value
            if isinstance(ty, tys.FloatType):
                value = float(value)
            inst = Instruction(Op.Constant, self.fresh_id, self.type_id, [value])
        ctx.module.global_insts.append(inst)


@dataclass
class AddUniform(Transformation):
    """Add a new uniform variable to the module *and* a matching binding to
    the input set — the paper's §7 future work ("transformations that modify
    both a SPIR-V module and its input in sync").

    Definition 2.4 permits effects that change the input: nothing reads the
    new uniform yet, so ``Semantics(P', I') = Semantics(P, I)``.  Follow-on
    transformations (``ReplaceConstantWithUniform``) can then obfuscate
    constants through it.
    """

    type_name = "AddUniform"

    fresh_id: int
    kind: str  # "int" | "float" | "bool"
    name: str
    value: Operand = 0
    fresh_pointer_type_id: int = 0

    def _pointee(self) -> tys.Type | None:
        return {
            "int": tys.IntType(),
            "float": tys.FloatType(),
            "bool": tys.BoolType(),
        }.get(self.kind)

    def precondition(self, ctx: Context) -> bool:
        pointee = self._pointee()
        if pointee is None:
            return False
        if not self.name or self.name in ctx.inputs:
            return False
        if ctx.module.id_named(self.name) is not None:
            return False
        if ctx.module.find_type_id(pointee) is None:
            return False
        if isinstance(pointee, tys.IntType):
            if not isinstance(self.value, int) or isinstance(self.value, bool):
                return False
            if not -(2**31) <= self.value < 2**31:
                return False
        elif isinstance(pointee, tys.FloatType):
            if not isinstance(self.value, (int, float)) or isinstance(self.value, bool):
                return False
        elif not isinstance(self.value, bool):
            return False
        pointer = tys.PointerType(tys.StorageClass.UNIFORM, pointee)
        if ctx.module.find_type_id(pointer) is not None:
            return ctx.is_fresh(self.fresh_id)
        return ctx.all_fresh_distinct([self.fresh_id, self.fresh_pointer_type_id])

    def apply(self, ctx: Context) -> None:
        pointee = self._pointee()
        assert pointee is not None
        pointer = tys.PointerType(tys.StorageClass.UNIFORM, pointee)
        pointer_type_id = ctx.module.find_type_id(pointer)
        if pointer_type_id is None:
            pointer_type_id = ctx.module.claim_id(self.fresh_pointer_type_id)
            pointee_id = ctx.module.find_type_id(pointee)
            assert pointee_id is not None
            ctx.module.global_insts.append(
                Instruction(
                    Op.TypePointer,
                    pointer_type_id,
                    None,
                    [tys.StorageClass.UNIFORM.value, pointee_id],
                )
            )
        ctx.module.claim_id(self.fresh_id)
        ctx.module.global_insts.append(
            Instruction(
                Op.Variable,
                self.fresh_id,
                pointer_type_id,
                [tys.StorageClass.UNIFORM.value],
            )
        )
        ctx.module.names[self.fresh_id] = self.name
        ctx.inputs[self.name] = self.value


@dataclass
class AddVariable(Transformation):
    """Add a fresh local (Function-storage) or global (Private-storage)
    variable, recording an ``IrrelevantPointee`` fact: the program's output
    cannot depend on memory nothing else references yet."""

    type_name = "AddVariable"

    fresh_id: int
    pointer_type_id: int
    function_id: int = 0  # 0 means module-scope (Private)
    initializer_id: int = 0  # 0 means zero-initialised

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        ptr_ty = ctx.types().get(self.pointer_type_id)
        if not isinstance(ptr_ty, tys.PointerType):
            return False
        if self.function_id:
            if ptr_ty.storage is not tys.StorageClass.FUNCTION:
                return False
            if not ctx.module.has_function(self.function_id):
                return False
            if not ctx.module.get_function(self.function_id).blocks:
                return False
        elif ptr_ty.storage is not tys.StorageClass.PRIVATE:
            return False
        if self.initializer_id:
            init = ctx.defs().get(self.initializer_id)
            if init is None or not init.opcode.value.startswith("OpConstant"):
                return False
            if ctx.value_type(self.initializer_id) != ptr_ty.pointee:
                return False
        return True

    def apply(self, ctx: Context) -> None:
        ptr_ty = ctx.types()[self.pointer_type_id]
        assert isinstance(ptr_ty, tys.PointerType)
        ctx.module.claim_id(self.fresh_id)
        operands: list[Operand] = [ptr_ty.storage.value]
        if self.initializer_id:
            operands.append(self.initializer_id)
        inst = Instruction(Op.Variable, self.fresh_id, self.pointer_type_id, operands)
        if self.function_id:
            entry = ctx.module.get_function(self.function_id).entry_block()
            index = 0
            while (
                index < len(entry.instructions)
                and entry.instructions[index].opcode is Op.Variable
            ):
                index += 1
            entry.instructions.insert(index, inst)
        else:
            ctx.module.global_insts.append(inst)
        ctx.facts.add_irrelevant_pointee(self.fresh_id)
