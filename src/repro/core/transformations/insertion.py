"""Insertion points for instruction-adding transformations.

Following the paper's independence principle (§2.3), insertion points are
anchored to *instruction ids*, not (block, offset) pairs: removing an earlier
transformation changes offsets but not ids, so anchored transformations stay
applicable under reduction.  The ``before the terminator of block L`` form
covers positions with no following instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import Context
from repro.ir.module import Block, Function, Instruction
from repro.ir.opcodes import Op


@dataclass(frozen=True)
class InsertBefore:
    """``anchor_id != 0``: insert immediately before that instruction.
    ``anchor_id == 0``: insert before the terminator of ``block_label``."""

    anchor_id: int = 0
    block_label: int = 0

    def to_json(self) -> dict:
        return {"anchor_id": self.anchor_id, "block_label": self.block_label}

    @classmethod
    def from_json(cls, record: dict) -> "InsertBefore":
        return cls(int(record["anchor_id"]), int(record["block_label"]))

    def resolve(self, ctx: Context) -> tuple[Function, Block, int] | None:
        """Locate the insertion point, or None when it is invalid.

        A valid point never precedes a phi or a variable (those prefixes are
        structurally pinned).
        """
        if self.anchor_id:
            located = ctx.module.containing_block(self.anchor_id)
            if located is None:
                return None
            function, block = located
            index = next(
                i
                for i, inst in enumerate(block.instructions)
                if inst.result_id == self.anchor_id
            )
            anchor = block.instructions[index]
            if anchor.opcode in (Op.Phi, Op.Variable):
                return None
            return function, block, index
        for function in ctx.module.functions:
            for block in function.blocks:
                if block.label_id == self.block_label:
                    return function, block, len(block.instructions)
        return None


def insert_instruction(point_result: tuple[Function, Block, int], inst: Instruction) -> None:
    _, block, index = point_result
    block.instructions.insert(index, inst)


def sample_insertion_points(ctx: Context, function: Function) -> list[InsertBefore]:
    """All valid insertion points in *function* (for fuzzer sampling)."""
    points: list[InsertBefore] = []
    for block in function.blocks:
        for inst in block.instructions:
            if inst.opcode in (Op.Phi, Op.Variable) or inst.result_id is None:
                continue
            points.append(InsertBefore(anchor_id=inst.result_id))
        points.append(InsertBefore(block_label=block.label_id))
    return points
