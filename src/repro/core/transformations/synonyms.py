"""Synonym-creating transformations and synonym exploitation.

These implement the paper's ``Synonymous`` fact machinery: copies, equation
instructions (spirv-fuzz's ``TransformationEquationInstruction``), composite
construction/extraction, and ``ReplaceIdWithSynonym``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import Context
from repro.core.facts import DataDescriptor, plain
from repro.core.transformation import Transformation
from repro.core.transformations.insertion import InsertBefore, insert_instruction
from repro.ir import types as tys
from repro.ir.module import Instruction
from repro.ir.opcodes import Op, OperandKind, op_info

#: Equation forms: (number of fresh ids, textual shape).
EQUATION_FORMS = (
    "iadd-zero",
    "imul-one",
    "iadd-isub",
    "fneg-fneg",
    "lognot-lognot",
    "invert-compare",
    "free",
)

#: Comparison opcodes and their negations (for the invert-compare form:
#: ``not (a OP' b)`` is a synonym for ``a OP b``).
_COMPARE_NEGATIONS = {
    Op.SLessThan: Op.SGreaterThanEqual,
    Op.SLessThanEqual: Op.SGreaterThan,
    Op.SGreaterThan: Op.SLessThanEqual,
    Op.SGreaterThanEqual: Op.SLessThan,
    Op.IEqual: Op.INotEqual,
    Op.INotEqual: Op.IEqual,
}

_FREE_OPS = {
    "OpIAdd": Op.IAdd,
    "OpISub": Op.ISub,
    "OpIMul": Op.IMul,
    "OpSDiv": Op.SDiv,
    "OpSRem": Op.SRem,
    "OpSNegate": Op.SNegate,
    "OpFAdd": Op.FAdd,
    "OpFSub": Op.FSub,
    "OpFMul": Op.FMul,
    "OpFDiv": Op.FDiv,
    "OpFNegate": Op.FNegate,
}
_TRAPPING_FREE = {"OpSDiv", "OpSRem"}
_FLOAT_FREE = {"OpFAdd", "OpFSub", "OpFMul", "OpFDiv", "OpFNegate"}
_UNARY_FREE = {"OpSNegate", "OpFNegate"}


@dataclass
class AddCopyObject(Transformation):
    """``OpCopyObject``: the canonical synonym creator."""

    type_name = "AddCopyObject"

    fresh_id: int
    source_id: int
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        source = ctx.defs().get(self.source_id)
        if source is None or source.type_id is None:
            return False
        if op_info(source.opcode).is_type_decl or source.opcode is Op.Function:
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, index = located
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        return availability.available_at(self.source_id, block.label_id, anchor)

    def apply(self, ctx: Context) -> None:
        source = ctx.defs()[self.source_id]
        located = self.point().resolve(ctx)
        assert located is not None
        ctx.module.claim_id(self.fresh_id)
        inst = Instruction(Op.CopyObject, self.fresh_id, source.type_id, [self.source_id])
        insert_instruction(located, inst)
        ctx.facts.add_synonym(plain(self.fresh_id), plain(self.source_id))
        if ctx.facts.is_irrelevant(self.source_id):
            ctx.facts.add_irrelevant(self.fresh_id)
        if ctx.facts.is_irrelevant_pointee(self.source_id):
            ctx.facts.add_irrelevant_pointee(self.fresh_id)


@dataclass
class AddEquationInstruction(Transformation):
    """Insert arithmetic that provably computes an existing value, recording
    a synonym — or, in the ``free`` form, arbitrary arithmetic with no fact
    (trapping opcodes only inside dead blocks).

    Forms: ``iadd-zero`` (``t = y + 0``), ``imul-one`` (``t = y * 1``),
    ``iadd-isub`` (``t1 = y + c; t2 = t1 - c``, exact under wrapping),
    ``fneg-fneg`` (``t2 = -(-y)``, exact in IEEE), ``lognot-lognot``, and
    ``free``.
    """

    type_name = "AddEquationInstruction"

    fresh_ids: list[int]
    form: str
    operand_ids: list[int] = field(default_factory=list)
    free_op: str = ""
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def _constant_value(self, ctx: Context, value_id: int):
        inst = ctx.defs().get(value_id)
        if inst is None or inst.opcode is not Op.Constant:
            return None
        return inst.operands[0]

    def precondition(self, ctx: Context) -> bool:
        if self.form not in EQUATION_FORMS:
            return False
        if not ctx.all_fresh_distinct([int(i) for i in self.fresh_ids]):
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, index = located
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        for operand in self.operand_ids:
            if not availability.available_at(int(operand), block.label_id, anchor):
                return False
            if ctx.value_type(int(operand)) is None:
                return False

        types = [ctx.value_type(int(o)) for o in self.operand_ids]
        n_fresh = len(self.fresh_ids)

        if self.form == "iadd-zero":
            if n_fresh != 1 or len(types) != 2:
                return False
            return (
                isinstance(types[0], tys.IntType)
                and types[0] == types[1]
                and self._constant_value(ctx, int(self.operand_ids[1])) == 0
            )
        if self.form == "imul-one":
            if n_fresh != 1 or len(types) != 2:
                return False
            return (
                isinstance(types[0], tys.IntType)
                and types[0] == types[1]
                and self._constant_value(ctx, int(self.operand_ids[1])) == 1
            )
        if self.form == "iadd-isub":
            if n_fresh != 2 or len(types) != 2:
                return False
            return isinstance(types[0], tys.IntType) and types[0] == types[1]
        if self.form == "fneg-fneg":
            return (
                n_fresh == 2 and len(types) == 1 and isinstance(types[0], tys.FloatType)
            )
        if self.form == "lognot-lognot":
            return (
                n_fresh == 2 and len(types) == 1 and isinstance(types[0], tys.BoolType)
            )
        if self.form == "invert-compare":
            # operand_ids = [c] where c is an integer comparison; we emit the
            # negated comparison over c's operands plus a LogicalNot, and
            # record Synonymous(not(negated), c).
            if n_fresh != 2 or len(self.operand_ids) != 1:
                return False
            source = ctx.defs().get(int(self.operand_ids[0]))
            if source is None or source.opcode not in _COMPARE_NEGATIONS:
                return False
            for operand in source.operands:
                if not availability.available_at(int(operand), block.label_id, anchor):
                    return False
            return True
        # free form
        if n_fresh != 1 or self.free_op not in _FREE_OPS:
            return False
        if self.free_op in _TRAPPING_FREE and not ctx.facts.is_dead_block(
            block.label_id
        ):
            return False
        want = tys.FloatType if self.free_op in _FLOAT_FREE else tys.IntType
        arity = 1 if self.free_op in _UNARY_FREE else 2
        if len(types) != arity:
            return False
        return all(isinstance(t, want) for t in types) and len(set(map(str, types))) == 1

    def apply(self, ctx: Context) -> None:
        located = self.point().resolve(ctx)
        assert located is not None
        _, block, index = located
        operands = [int(o) for o in self.operand_ids]
        type_id = ctx.defs()[operands[0]].type_id
        fresh = [ctx.module.claim_id(int(i)) for i in self.fresh_ids]

        def emit(op: Op, result: int, ops: list[int]) -> None:
            nonlocal index
            block.instructions.insert(index, Instruction(op, result, type_id, ops))
            index += 1

        if self.form == "iadd-zero":
            emit(Op.IAdd, fresh[0], operands)
            ctx.facts.add_synonym(plain(fresh[0]), plain(operands[0]))
        elif self.form == "imul-one":
            emit(Op.IMul, fresh[0], operands)
            ctx.facts.add_synonym(plain(fresh[0]), plain(operands[0]))
        elif self.form == "iadd-isub":
            emit(Op.IAdd, fresh[0], operands)
            emit(Op.ISub, fresh[1], [fresh[0], operands[1]])
            ctx.facts.add_synonym(plain(fresh[1]), plain(operands[0]))
        elif self.form == "fneg-fneg":
            emit(Op.FNegate, fresh[0], operands)
            emit(Op.FNegate, fresh[1], [fresh[0]])
            ctx.facts.add_synonym(plain(fresh[1]), plain(operands[0]))
        elif self.form == "lognot-lognot":
            emit(Op.LogicalNot, fresh[0], operands)
            emit(Op.LogicalNot, fresh[1], [fresh[0]])
            ctx.facts.add_synonym(plain(fresh[1]), plain(operands[0]))
        elif self.form == "invert-compare":
            source = ctx.defs()[operands[0]]
            negated_op = _COMPARE_NEGATIONS[source.opcode]
            bool_type_id = source.type_id
            block.instructions.insert(
                index,
                Instruction(
                    negated_op, fresh[0], bool_type_id, list(source.operands)
                ),
            )
            block.instructions.insert(
                index + 1,
                Instruction(Op.LogicalNot, fresh[1], bool_type_id, [fresh[0]]),
            )
            ctx.facts.add_synonym(plain(fresh[1]), plain(operands[0]))
        else:
            emit(_FREE_OPS[self.free_op], fresh[0], operands)


@dataclass
class AddCompositeConstruct(Transformation):
    """Build a composite from available parts, recording a ``Synonymous``
    fact per component (§3.2)."""

    type_name = "AddCompositeConstruct"

    fresh_id: int
    result_type_id: int
    member_ids: list[int] = field(default_factory=list)
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        result_ty = ctx.types().get(self.result_type_id)
        if result_ty is None or not result_ty.is_composite():
            return False
        if len(self.member_ids) != tys.composite_member_count(result_ty):
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, index = located
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        for i, member in enumerate(self.member_ids):
            if ctx.value_type(int(member)) != tys.composite_member_type(result_ty, i):
                return False
            if not availability.available_at(int(member), block.label_id, anchor):
                return False
        return True

    def apply(self, ctx: Context) -> None:
        located = self.point().resolve(ctx)
        assert located is not None
        ctx.module.claim_id(self.fresh_id)
        inst = Instruction(
            Op.CompositeConstruct,
            self.fresh_id,
            self.result_type_id,
            [int(m) for m in self.member_ids],
        )
        insert_instruction(located, inst)
        for i, member in enumerate(self.member_ids):
            ctx.facts.add_synonym(
                DataDescriptor(self.fresh_id, (i,)), plain(int(member))
            )


@dataclass
class AddCompositeExtract(Transformation):
    """Extract a component, recording ``Synonymous(result, composite[i...])``
    — which transitively links the result to whatever the component is
    already known to equal."""

    type_name = "AddCompositeExtract"

    fresh_id: int
    composite_id: int
    indices: list[int] = field(default_factory=list)
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def _member_type(self, ctx: Context) -> tys.Type | None:
        composite_ty = ctx.value_type(self.composite_id)
        if composite_ty is None:
            return None
        try:
            return tys.walk_composite(composite_ty, tuple(int(i) for i in self.indices))
        except (TypeError, IndexError):
            return None

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id) or not self.indices:
            return False
        member_ty = self._member_type(ctx)
        if member_ty is None or ctx.module.find_type_id(member_ty) is None:
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, index = located
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        return availability.available_at(self.composite_id, block.label_id, anchor)

    def apply(self, ctx: Context) -> None:
        member_ty = self._member_type(ctx)
        assert member_ty is not None
        type_id = ctx.module.find_type_id(member_ty)
        assert type_id is not None
        located = self.point().resolve(ctx)
        assert located is not None
        ctx.module.claim_id(self.fresh_id)
        inst = Instruction(
            Op.CompositeExtract,
            self.fresh_id,
            type_id,
            [self.composite_id, *[int(i) for i in self.indices]],
        )
        insert_instruction(located, inst)
        ctx.facts.add_synonym(
            plain(self.fresh_id),
            DataDescriptor(self.composite_id, tuple(int(i) for i in self.indices)),
        )


@dataclass
class AddCompositeInsert(Transformation):
    """``OpCompositeInsert`` of a value into a composite, recording what is
    known afterwards: the touched slot is synonymous with the inserted
    object, and every *other* slot is synonymous with the corresponding slot
    of the source composite."""

    type_name = "AddCompositeInsert"

    fresh_id: int
    composite_id: int
    object_id: int
    index: int = 0
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        composite_ty = ctx.value_type(self.composite_id)
        if composite_ty is None or not composite_ty.is_composite():
            return False
        count = tys.composite_member_count(composite_ty)
        if not 0 <= self.index < count:
            return False
        if ctx.value_type(self.object_id) != tys.composite_member_type(
            composite_ty, self.index
        ):
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, position = located
        availability = ctx.availability(function)
        anchor = (
            block.instructions[position]
            if position < len(block.instructions)
            else None
        )
        return availability.available_at(
            self.composite_id, block.label_id, anchor
        ) and availability.available_at(self.object_id, block.label_id, anchor)

    def apply(self, ctx: Context) -> None:
        source = ctx.defs()[self.composite_id]
        located = self.point().resolve(ctx)
        assert located is not None
        ctx.module.claim_id(self.fresh_id)
        inst = Instruction(
            Op.CompositeInsert,
            self.fresh_id,
            source.type_id,
            [self.object_id, self.composite_id, self.index],
        )
        insert_instruction(located, inst)
        composite_ty = ctx.value_type(self.composite_id)
        assert composite_ty is not None  # same type as the result
        ctx.facts.add_synonym(
            DataDescriptor(self.fresh_id, (self.index,)), plain(self.object_id)
        )
        for other in range(tys.composite_member_count(composite_ty)):
            if other != self.index:
                ctx.facts.add_synonym(
                    DataDescriptor(self.fresh_id, (other,)),
                    DataDescriptor(self.composite_id, (other,)),
                )


@dataclass
class ReplaceIdWithSynonym(Transformation):
    """Replace an operand with a known-equal id (§3.2).  Ignored by
    deduplication: it reaps the benefits of earlier transformations but is
    not interesting in isolation (§3.5)."""

    type_name = "ReplaceIdWithSynonym"

    instruction_id: int
    operand_index: int
    synonym_id: int

    def precondition(self, ctx: Context) -> bool:
        located = ctx.module.containing_block(self.instruction_id)
        if located is None:
            return False
        function, block = located
        inst = next(
            i for i in block.instructions if i.result_id == self.instruction_id
        )
        if inst.opcode in (Op.Phi, Op.Variable):
            return False
        slots = inst.operand_slots()
        if not 0 <= self.operand_index < len(slots):
            return False
        kind, operand = slots[self.operand_index]
        if kind is not OperandKind.ID:
            return False
        current = int(operand)
        if current == self.synonym_id:
            return False
        if not ctx.facts.are_synonymous(plain(current), plain(self.synonym_id)):
            return False
        if ctx.value_type(current) != ctx.value_type(self.synonym_id):
            return False
        # AccessChain struct indices must stay literal constants; synonyms of
        # constants (e.g. copies) are not constants, so skip index positions.
        if inst.opcode is Op.AccessChain and self.operand_index >= 1:
            return False
        availability = ctx.availability(function)
        return availability.available_at(self.synonym_id, block.label_id, inst)

    def apply(self, ctx: Context) -> None:
        located = ctx.module.containing_block(self.instruction_id)
        assert located is not None
        _, block = located
        inst = next(
            i for i in block.instructions if i.result_id == self.instruction_id
        )
        # Map the slot index back to the flat operand index.
        flat_index = self.operand_index
        inst.operands[flat_index] = self.synonym_id
