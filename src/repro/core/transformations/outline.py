"""OutlineFunction: extract a run of instructions into a fresh function
(spirv-fuzz's ``TransformationOutlineFunction``, in single-block form).

The region is identified by its first and last instruction *ids*
(independence principle).  Values the region uses but does not define become
parameters (globals and constants are referenced directly); at most one
region-defined value may be used after the region — it becomes the return
value, and the replacing ``OpFunctionCall`` *reuses its id*, so downstream
uses and facts are untouched.  All ids defined inside the region are remapped
to fresh ids in the outlined body via an explicit, recorded mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import Context
from repro.core.transformation import Transformation
from repro.ir import types as tys
from repro.ir.module import Block, Function, Instruction
from repro.ir.opcodes import FUNCTION_CONTROL_NONE, Op


@dataclass
class OutlineFunction(Transformation):
    """Fields:

    * ``first_id`` / ``last_id`` — result ids delimiting the region (both
      inclusive; every instruction in between must produce a result or be a
      store).
    * ``id_map`` — region-defined id → fresh id used inside the new function.
    * ``param_map`` — outside-defined (function-local) id → fresh parameter id.
    * ``fresh_function_id`` / ``fresh_label_id`` — the new function and its
      entry block.
    * ``fresh_function_type_id`` — used when the needed ``OpTypeFunction``
      does not already exist.
    """

    type_name = "OutlineFunction"

    first_id: int
    last_id: int
    fresh_function_id: int
    fresh_label_id: int
    fresh_function_type_id: int
    id_map: dict[int, int] = field(default_factory=dict)
    param_map: dict[int, int] = field(default_factory=dict)

    # -- region discovery --------------------------------------------------------

    def _region(self, ctx: Context):
        """(function, block, start, end) of the inclusive instruction span."""
        located = ctx.module.containing_block(self.first_id)
        if located is None:
            return None
        function, block = located
        indices = {
            inst.result_id: i
            for i, inst in enumerate(block.instructions)
            if inst.result_id is not None
        }
        if self.last_id not in indices:
            return None
        start, end = indices[self.first_id], indices[self.last_id]
        if start > end:
            return None
        return function, block, start, end

    def _analyse(self, ctx: Context):
        """Classify region defs/uses; None when the region is not outlineable."""
        region = self._region(ctx)
        if region is None:
            return None
        function, block, start, end = region
        instructions = block.instructions[start : end + 1]
        for inst in instructions:
            if inst.opcode in (Op.Phi, Op.Variable):
                return None

        defined = {
            inst.result_id for inst in instructions if inst.result_id is not None
        }
        global_ids = {
            inst.result_id
            for inst in ctx.module.global_insts
            if inst.result_id is not None
        }
        global_ids.update(f.result_id for f in ctx.module.functions)

        incoming: list[int] = []
        for inst in instructions:
            for used in inst.used_ids():
                if used in defined or used in global_ids or used == inst.type_id:
                    continue
                used_inst = ctx.defs().get(used)
                if used_inst is None:
                    return None
                if used_inst.type_id is None:
                    return None  # labels etc. cannot be parameters
                if used not in incoming:
                    incoming.append(used)

        # Region-defined ids used after the region (same block tail, other
        # blocks, or phis anywhere): at most one, and never a pointer (our IR
        # has no pointer-valued returns from Function storage).
        escaping: list[int] = []
        for other_fn in ctx.module.functions:
            for other_block in other_fn.blocks:
                for inst in other_block.all_instructions():
                    if other_block is block and inst in instructions:
                        continue
                    for used in inst.used_ids():
                        if used in defined and used not in escaping:
                            escaping.append(used)
        # Exactly one escaping value: it becomes the return value and the
        # replacing call reuses its id.  (Zero-escape regions would need an
        # extra fresh id for a void call result; not worth the asymmetry.)
        if len(escaping) != 1:
            return None
        out_id = escaping[0]
        out_ty = ctx.value_type(out_id)
        if out_ty is None or isinstance(out_ty, (tys.PointerType, tys.VoidType)):
            return None
        for value in incoming:
            in_ty = ctx.value_type(value)
            if in_ty is None or isinstance(in_ty, tys.VoidType):
                return None
        return function, block, start, end, instructions, incoming, out_id

    # -- protocol ------------------------------------------------------------------

    def precondition(self, ctx: Context) -> bool:
        analysis = self._analyse(ctx)
        if analysis is None:
            return False
        _, _, _, _, instructions, incoming, out_id = analysis
        defined = [
            inst.result_id for inst in instructions if inst.result_id is not None
        ]
        mapped = {int(k): int(v) for k, v in self.id_map.items()}
        params = {int(k): int(v) for k, v in self.param_map.items()}
        if not set(defined) <= set(mapped):
            return False
        if not set(incoming) <= set(params):
            return False
        needed_fresh = (
            [mapped[d] for d in defined]
            + [params[i] for i in incoming]
            + [self.fresh_function_id, self.fresh_label_id]
        )
        if len(set(needed_fresh)) != len(needed_fresh):
            return False
        if not all(ctx.is_fresh(v) for v in needed_fresh):
            return False
        # Return/param types must already be declared; the function type may
        # use the dedicated fresh id.
        return_ty = ctx.value_type(out_id)
        param_tys = tuple(ctx.value_type(i) for i in incoming)
        fn_ty = tys.FunctionType(return_ty, param_tys)  # type: ignore[arg-type]
        if ctx.module.find_type_id(fn_ty) is None:
            if self.fresh_function_type_id in needed_fresh:
                return False
            if not ctx.is_fresh(self.fresh_function_type_id):
                return False
        return True

    def apply(self, ctx: Context) -> None:
        analysis = self._analyse(ctx)
        assert analysis is not None
        function, block, start, end, instructions, incoming, out_id = analysis
        mapped = {int(k): int(v) for k, v in self.id_map.items()}
        params = {int(k): int(v) for k, v in self.param_map.items()}

        return_ty = ctx.value_type(out_id)
        assert return_ty is not None
        param_tys = [ctx.value_type(i) for i in incoming]
        fn_ty = tys.FunctionType(return_ty, tuple(param_tys))  # type: ignore[arg-type]
        fn_type_id = ctx.module.find_type_id(fn_ty)
        if fn_type_id is None:
            fn_type_id = ctx.module.claim_id(self.fresh_function_type_id)
            return_type_id = ctx.module.find_type_id(return_ty)
            assert return_type_id is not None
            param_type_ids = []
            for ty in param_tys:
                assert ty is not None
                tid = ctx.module.find_type_id(ty)
                assert tid is not None
                param_type_ids.append(tid)
            ctx.module.global_insts.append(
                Instruction(
                    Op.TypeFunction,
                    fn_type_id,
                    None,
                    [return_type_id, *param_type_ids],
                )
            )
        return_type_id = ctx.module.find_type_id(return_ty)
        assert return_type_id is not None

        # Build the outlined function.
        ctx.module.claim_id(self.fresh_function_id)
        outlined = Function(
            Instruction(
                Op.Function,
                self.fresh_function_id,
                return_type_id,
                [FUNCTION_CONTROL_NONE, fn_type_id],
            )
        )
        binding = dict(mapped)
        for value in incoming:
            param_id = ctx.module.claim_id(params[value])
            param_type_id = ctx.module.find_type_id(ctx.value_type(value))
            assert param_type_id is not None
            outlined.params.append(
                Instruction(Op.FunctionParameter, param_id, param_type_id)
            )
            binding[value] = param_id
        body = Block(ctx.module.claim_id(self.fresh_label_id))
        for inst in instructions:
            copy = inst.clone()
            if copy.result_id is not None:
                ctx.module.claim_id(mapped[copy.result_id])
            copy.remap_ids(binding)
            body.instructions.append(copy)
        body.terminator = Instruction(Op.ReturnValue, None, None, [binding[out_id]])
        outlined.blocks.append(body)
        ctx.module.functions.append(outlined)
        ctx.module.names[self.fresh_function_id] = f"outlined_{self.first_id}"

        # Replace the region with a call that *reuses* the escaping id, so
        # downstream uses and facts are untouched.
        call = Instruction(
            Op.FunctionCall,
            out_id,
            return_type_id,
            [self.fresh_function_id, *incoming],
        )
        block.instructions[start : end + 1] = [call]