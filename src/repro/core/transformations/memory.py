"""Memory transformations: loads, stores, access chains."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.context import Context
from repro.core.transformation import Transformation
from repro.core.transformations.insertion import InsertBefore, insert_instruction
from repro.ir import types as tys
from repro.ir.module import Instruction
from repro.ir.opcodes import Op


@dataclass
class AddLoad(Transformation):
    """Insert a load from an existing pointer; the fresh result is unused, so
    the program's output is unaffected (§2.1's ``AddLoad``).  Loading from an
    ``IrrelevantPointee`` pointer yields an ``Irrelevant`` result."""

    type_name = "AddLoad"

    fresh_id: int
    pointer_id: int
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        ptr_ty = ctx.value_type(self.pointer_id)
        if not isinstance(ptr_ty, tys.PointerType):
            return False
        if ctx.module.find_type_id(ptr_ty.pointee) is None:
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, _ = located
        availability = ctx.availability(function)
        anchor = (
            block.instructions[located[2]]
            if located[2] < len(block.instructions)
            else None
        )
        return availability.available_at(self.pointer_id, block.label_id, anchor)

    def apply(self, ctx: Context) -> None:
        ptr_ty = ctx.value_type(self.pointer_id)
        assert isinstance(ptr_ty, tys.PointerType)
        pointee_type_id = ctx.module.find_type_id(ptr_ty.pointee)
        assert pointee_type_id is not None
        located = self.point().resolve(ctx)
        assert located is not None
        ctx.module.claim_id(self.fresh_id)
        inst = Instruction(Op.Load, self.fresh_id, pointee_type_id, [self.pointer_id])
        insert_instruction(located, inst)
        if ctx.facts.is_irrelevant_pointee(self.pointer_id):
            ctx.facts.add_irrelevant(self.fresh_id)


@dataclass
class AddStore(Transformation):
    """Insert a store.  Sound in exactly two situations (§2.1's ``AddStore``
    and spirv-fuzz's irrelevant-pointee stores): the insertion block carries
    a ``DeadBlock`` fact, or the pointer carries ``IrrelevantPointee``."""

    type_name = "AddStore"

    pointer_id: int
    value_id: int
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def precondition(self, ctx: Context) -> bool:
        ptr_ty = ctx.value_type(self.pointer_id)
        if not isinstance(ptr_ty, tys.PointerType):
            return False
        if ptr_ty.storage in (tys.StorageClass.UNIFORM, tys.StorageClass.INPUT):
            return False
        if ctx.value_type(self.value_id) != ptr_ty.pointee:
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, index = located
        if not (
            ctx.facts.is_dead_block(block.label_id)
            or ctx.facts.is_irrelevant_pointee(self.pointer_id)
        ):
            return False
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        return availability.available_at(
            self.pointer_id, block.label_id, anchor
        ) and availability.available_at(self.value_id, block.label_id, anchor)

    def apply(self, ctx: Context) -> None:
        located = self.point().resolve(ctx)
        assert located is not None
        inst = Instruction(Op.Store, None, None, [self.pointer_id, self.value_id])
        insert_instruction(located, inst)


@dataclass
class AddAccessChain(Transformation):
    """Insert an access chain with constant, in-bounds indices into an
    existing pointer.  The result pointer inherits ``IrrelevantPointee``."""

    type_name = "AddAccessChain"

    fresh_id: int
    pointer_id: int
    index_const_ids: list[int] | None = None
    anchor_id: int = 0
    block_label: int = 0

    def point(self) -> InsertBefore:
        return InsertBefore(self.anchor_id, self.block_label)

    def _result_pointee(self, ctx: Context) -> tys.Type | None:
        ptr_ty = ctx.value_type(self.pointer_id)
        if not isinstance(ptr_ty, tys.PointerType):
            return None
        current = ptr_ty.pointee
        for index_id in self.index_const_ids or []:
            inst = ctx.defs().get(int(index_id))
            if inst is None or inst.opcode is not Op.Constant:
                return None
            if not isinstance(ctx.value_type(int(index_id)), tys.IntType):
                return None
            index = int(inst.operands[0])
            if not current.is_composite():
                return None
            if not 0 <= index < tys.composite_member_count(current):
                return None
            current = tys.composite_member_type(current, index)
        return current

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_id):
            return False
        if not self.index_const_ids:
            return False
        pointee = self._result_pointee(ctx)
        if pointee is None:
            return False
        ptr_ty = ctx.value_type(self.pointer_id)
        assert isinstance(ptr_ty, tys.PointerType)
        if ctx.module.find_type_id(tys.PointerType(ptr_ty.storage, pointee)) is None:
            return False
        located = self.point().resolve(ctx)
        if located is None:
            return False
        function, block, index = located
        availability = ctx.availability(function)
        anchor = block.instructions[index] if index < len(block.instructions) else None
        return availability.available_at(self.pointer_id, block.label_id, anchor)

    def apply(self, ctx: Context) -> None:
        pointee = self._result_pointee(ctx)
        ptr_ty = ctx.value_type(self.pointer_id)
        assert pointee is not None and isinstance(ptr_ty, tys.PointerType)
        result_type_id = ctx.module.find_type_id(
            tys.PointerType(ptr_ty.storage, pointee)
        )
        assert result_type_id is not None
        located = self.point().resolve(ctx)
        assert located is not None
        ctx.module.claim_id(self.fresh_id)
        inst = Instruction(
            Op.AccessChain,
            self.fresh_id,
            result_type_id,
            [self.pointer_id, *[int(i) for i in self.index_const_ids or []]],
        )
        insert_instruction(located, inst)
        if ctx.facts.is_irrelevant_pointee(self.pointer_id):
            ctx.facts.add_irrelevant_pointee(self.fresh_id)
