"""The transformation library (~24 types, mirroring spirv-fuzz's design)."""

from repro.core.transformations.blocks import (
    AddDeadBlock,
    MoveBlockDown,
    ObfuscateBranch,
    PermutePhiOperands,
    PropagateInstructionUp,
    ReplaceBranchWithKill,
    SplitBlock,
    WrapRegionInSelection,
)
from repro.core.transformations.functions import (
    AddFunction,
    AddParameter,
    FunctionCall,
    InlineFunction,
    PermuteFunctionParameters,
    ToggleFunctionControl,
)
from repro.core.transformations.insertion import (
    InsertBefore,
    insert_instruction,
    sample_insertion_points,
)
from repro.core.transformations.memory import AddAccessChain, AddLoad, AddStore
from repro.core.transformations.outline import OutlineFunction
from repro.core.transformations.obfuscate import (
    ObfuscateConstant,
    ReplaceConstantWithUniform,
    ReplaceIrrelevantId,
    SwapCommutableOperands,
    WrapInSelect,
)
from repro.core.transformations.support import (
    AddConstant,
    AddType,
    AddUniform,
    AddVariable,
)
from repro.core.transformations.synonyms import (
    AddCompositeConstruct,
    AddCompositeExtract,
    AddCompositeInsert,
    AddCopyObject,
    AddEquationInstruction,
    ReplaceIdWithSynonym,
)

__all__ = [
    "AddAccessChain",
    "AddCompositeConstruct",
    "AddCompositeExtract",
    "AddCompositeInsert",
    "AddConstant",
    "AddCopyObject",
    "AddDeadBlock",
    "AddEquationInstruction",
    "AddFunction",
    "AddLoad",
    "AddParameter",
    "AddStore",
    "AddType",
    "AddUniform",
    "AddVariable",
    "FunctionCall",
    "InlineFunction",
    "InsertBefore",
    "MoveBlockDown",
    "ObfuscateBranch",
    "ObfuscateConstant",
    "OutlineFunction",
    "PermuteFunctionParameters",
    "PermutePhiOperands",
    "PropagateInstructionUp",
    "ReplaceBranchWithKill",
    "ReplaceConstantWithUniform",
    "ReplaceIdWithSynonym",
    "ReplaceIrrelevantId",
    "SplitBlock",
    "SwapCommutableOperands",
    "ToggleFunctionControl",
    "WrapInSelect",
    "WrapRegionInSelection",
    "insert_instruction",
    "sample_insertion_points",
]
