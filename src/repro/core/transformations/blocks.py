"""Control-flow transformations: splitting, dead blocks, kills, block order,
branch obfuscation, selection wrapping, and instruction propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.context import Context
from repro.core.transformation import Transformation
from repro.ir import types as tys
from repro.ir.module import Block, Instruction
from repro.ir.opcodes import PURE_OPS, Op
from repro.ir.rewrite import remove_phi_predecessor, split_block


@dataclass
class SplitBlock(Transformation):
    """Split a block before a given instruction (by *id*, per the §2.3
    independence principle) or before a block's terminator.

    Two forms, one type: ``instruction_id != 0`` splits before that
    instruction; otherwise the split happens before the terminator of
    ``block_label``, producing an instruction-free tail block (e.g. a lone
    ``OpKill``).
    """

    type_name = "SplitBlock"

    fresh_label_id: int
    instruction_id: int = 0
    block_label: int = 0

    def _locate(self, ctx: Context):
        if self.instruction_id:
            located = ctx.module.containing_block(self.instruction_id)
            if located is None:
                return None
            function, block = located
            index = next(
                i
                for i, inst in enumerate(block.instructions)
                if inst.result_id == self.instruction_id
            )
            return function, block, index
        for function in ctx.module.functions:
            if function.has_block(self.block_label):
                block = function.block(self.block_label)
                return function, block, len(block.instructions)
        return None

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_label_id):
            return False
        located = self._locate(ctx)
        if located is None:
            return False
        _, block, index = located
        if block.terminator is None:
            return False
        if index < len(block.phis()):
            return False
        # The tail must not contain variables (pinned to the entry prefix).
        if any(
            inst.opcode is Op.Variable for inst in block.instructions[index:]
        ):
            return False
        return True

    def apply(self, ctx: Context) -> None:
        located = self._locate(ctx)
        assert located is not None
        function, block, index = located
        ctx.module.claim_id(self.fresh_label_id)
        new_block = split_block(function, block, index, self.fresh_label_id)
        # A dead block's tail is equally dead.
        if ctx.facts.is_dead_block(block.label_id):
            ctx.facts.add_dead_block(new_block.label_id)


@dataclass
class AddDeadBlock(Transformation):
    """Turn an unconditional branch ``b -> s`` into a conditional branch on a
    known-true (or, in the negated form, known-false) constant whose untaken
    side is a fresh, dynamically dead block that falls through to ``s``.

    Following §2.3, the transformation does not mint its own truth value: the
    boolean constant must already exist (``AddConstant`` supplies it), so the
    reducer can strip this transformation independently of the constant.
    Records a ``DeadBlock`` fact.
    """

    type_name = "AddDeadBlock"

    fresh_label_id: int
    existing_block_label: int
    condition_id: int
    negate: bool = False

    def _function(self, ctx: Context):
        for function in ctx.module.functions:
            if function.has_block(self.existing_block_label):
                return function
        return None

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_label_id):
            return False
        function = self._function(ctx)
        if function is None:
            return False
        block = function.block(self.existing_block_label)
        if block.terminator is None or block.terminator.opcode is not Op.Branch:
            return False
        cond = ctx.defs().get(self.condition_id)
        if cond is None:
            return False
        wanted = Op.ConstantFalse if self.negate else Op.ConstantTrue
        return cond.opcode is wanted

    def apply(self, ctx: Context) -> None:
        function = self._function(ctx)
        assert function is not None
        block = function.block(self.existing_block_label)
        assert block.terminator is not None
        successor_label = int(block.terminator.operands[0])
        ctx.module.claim_id(self.fresh_label_id)

        dead = Block(self.fresh_label_id)
        dead.terminator = Instruction(Op.Branch, None, None, [successor_label])
        position = function.block_index(block.label_id)
        function.blocks.insert(position + 1, dead)

        if self.negate:
            targets = [self.fresh_label_id, successor_label]
        else:
            targets = [successor_label, self.fresh_label_id]
        block.terminator = Instruction(
            Op.BranchConditional, None, None, [self.condition_id, *targets]
        )

        # The successor gains the dead block as a predecessor; phis copy the
        # incoming value of the existing edge (values available at the end of
        # `block` are available in the dead block, which it dominates).
        successor = function.block(successor_label)
        for phi in successor.phis():
            for value_id, pred in phi.phi_pairs():
                if pred == block.label_id:
                    phi.operands.extend([value_id, self.fresh_label_id])
                    break
        ctx.facts.add_dead_block(self.fresh_label_id)
        # Anything in a dead block can never affect the output.
        if ctx.facts.is_dead_block(block.label_id):
            pass  # already dead; fact for the new block is enough


@dataclass
class ReplaceBranchWithKill(Transformation):
    """Replace a dead block's branch terminator with ``OpKill`` (or, in the
    second form of this type, ``OpUnreachable``).  Substantially changes the
    static CFG with no dynamic effect (§3.2)."""

    type_name = "ReplaceBranchWithKill"

    block_label: int
    use_unreachable: bool = False

    def _function(self, ctx: Context):
        for function in ctx.module.functions:
            if function.has_block(self.block_label):
                return function
        return None

    def precondition(self, ctx: Context) -> bool:
        if not ctx.facts.is_dead_block(self.block_label):
            return False
        function = self._function(ctx)
        if function is None:
            return False
        block = function.block(self.block_label)
        if block.terminator is None or block.terminator.opcode is not Op.Branch:
            return False
        successor_label = int(block.terminator.operands[0])
        successor = function.block(successor_label)
        # Removing the edge must leave the successor's phis non-empty.
        others = [
            p for p in function.predecessors(successor_label) if p != self.block_label
        ]
        if successor.phis() and not others:
            return False
        # OpKill is only meaningful within the entry point's call tree; both
        # forms are fine anywhere in our IR, but keep OpKill out of functions
        # the entry point cannot reach?  No: dead blocks never execute, so
        # either terminator is sound anywhere.
        return True

    def apply(self, ctx: Context) -> None:
        function = self._function(ctx)
        assert function is not None
        block = function.block(self.block_label)
        assert block.terminator is not None
        successor_label = int(block.terminator.operands[0])
        successor = function.block(successor_label)
        if successor.phis():
            remove_phi_predecessor(successor, self.block_label)
        op = Op.Unreachable if self.use_unreachable else Op.Kill
        block.terminator = Instruction(op)


@dataclass
class MoveBlockDown(Transformation):
    """Swap a block with its syntactic successor when dominance rules allow
    (§3.2): the block must not strictly dominate the next block."""

    type_name = "MoveBlockDown"

    block_label: int

    def _position(self, ctx: Context):
        for function in ctx.module.functions:
            for index, block in enumerate(function.blocks):
                if block.label_id == self.block_label:
                    return function, index
        return None

    def precondition(self, ctx: Context) -> bool:
        located = self._position(ctx)
        if located is None:
            return False
        function, index = located
        if index == 0 or index + 1 >= len(function.blocks):
            return False  # the entry block must stay first
        cfg = ctx.cfg(function)
        next_label = function.blocks[index + 1].label_id
        return not cfg.strictly_dominates(self.block_label, next_label)

    def apply(self, ctx: Context) -> None:
        located = self._position(ctx)
        assert located is not None
        function, index = located
        blocks = function.blocks
        blocks[index], blocks[index + 1] = blocks[index + 1], blocks[index]


@dataclass
class ObfuscateBranch(Transformation):
    """Replace ``OpBranch t`` with ``OpBranchConditional c t t``: whatever
    the condition evaluates to, control reaches ``t``."""

    type_name = "ObfuscateBranch"

    block_label: int
    condition_id: int

    def _function(self, ctx: Context):
        for function in ctx.module.functions:
            if function.has_block(self.block_label):
                return function
        return None

    def precondition(self, ctx: Context) -> bool:
        function = self._function(ctx)
        if function is None:
            return False
        block = function.block(self.block_label)
        if block.terminator is None or block.terminator.opcode is not Op.Branch:
            return False
        if not isinstance(ctx.value_type(self.condition_id), tys.BoolType):
            return False
        availability = ctx.availability(function)
        return availability.available_at(self.condition_id, self.block_label, None)

    def apply(self, ctx: Context) -> None:
        function = self._function(ctx)
        assert function is not None
        block = function.block(self.block_label)
        assert block.terminator is not None
        target = int(block.terminator.operands[0])
        block.terminator = Instruction(
            Op.BranchConditional, None, None, [self.condition_id, target, target]
        )


@dataclass
class WrapRegionInSelection(Transformation):
    """Wrap a block in one branch of a constant conditional (§3.3): in the
    default form the block becomes the 'then' of an always-true conditional;
    with ``negate`` it becomes the 'else' of an always-false conditional.
    Both forms share this one type so deduplication treats them alike."""

    type_name = "WrapRegionInSelection"

    fresh_header_id: int
    block_label: int
    condition_id: int
    negate: bool = False

    def _function(self, ctx: Context):
        for function in ctx.module.functions:
            if function.has_block(self.block_label):
                return function
        return None

    def precondition(self, ctx: Context) -> bool:
        if not ctx.is_fresh(self.fresh_header_id):
            return False
        function = self._function(ctx)
        if function is None:
            return False
        block = function.block(self.block_label)
        if block is function.entry_block():
            return False
        if block.phis():
            return False
        if block.terminator is None or block.terminator.opcode is not Op.Branch:
            return False
        successor_label = int(block.terminator.operands[0])
        if successor_label == self.block_label:
            return False
        successor = function.block(successor_label)
        if successor.phis():
            return False
        cond = ctx.defs().get(self.condition_id)
        if cond is None:
            return False
        wanted = Op.ConstantFalse if self.negate else Op.ConstantTrue
        if cond.opcode is not wanted:
            return False
        # The never-taken "skip" edge from the new header to the successor
        # still exists *statically*, so the wrapped block no longer dominates
        # anything downstream.  Values defined inside it must therefore not
        # be used outside it.
        defined_here = {
            inst.result_id
            for inst in block.instructions
            if inst.result_id is not None
        }
        if defined_here:
            for other in function.blocks:
                if other is block:
                    continue
                for inst in other.all_instructions():
                    if any(used in defined_here for used in inst.used_ids()):
                        return False
        return True

    def apply(self, ctx: Context) -> None:
        function = self._function(ctx)
        assert function is not None
        block = function.block(self.block_label)
        assert block.terminator is not None
        successor_label = int(block.terminator.operands[0])
        ctx.module.claim_id(self.fresh_header_id)

        header = Block(self.fresh_header_id)
        if self.negate:
            targets = [successor_label, self.block_label]
        else:
            targets = [self.block_label, successor_label]
        header.terminator = Instruction(
            Op.BranchConditional, None, None, [self.condition_id, *targets]
        )
        # Redirect every edge into the block to the new header.
        for other in function.blocks:
            term = other.terminator
            if term is None:
                continue
            if term.opcode is Op.Branch and int(term.operands[0]) == self.block_label:
                term.operands[0] = self.fresh_header_id
            elif term.opcode is Op.BranchConditional:
                for i in (1, 2):
                    if int(term.operands[i]) == self.block_label:
                        term.operands[i] = self.fresh_header_id
        position = function.block_index(self.block_label)
        function.blocks.insert(position, header)
        if ctx.facts.is_dead_block(self.block_label):
            ctx.facts.add_dead_block(self.fresh_header_id)


@dataclass
class PermutePhiOperands(Transformation):
    """Reorder a phi's (value, predecessor) pairs — the pairing is a set, so
    any permutation is semantics-neutral, but real compilers have been known
    to depend on pair order."""

    type_name = "PermutePhiOperands"

    phi_id: int
    rotation: int = 1

    def precondition(self, ctx: Context) -> bool:
        located = ctx.module.containing_block(self.phi_id)
        if located is None:
            return False
        _, block = located
        inst = next(i for i in block.instructions if i.result_id == self.phi_id)
        if inst.opcode is not Op.Phi:
            return False
        pairs = inst.phi_pairs()
        return len(pairs) >= 2 and 0 < self.rotation < len(pairs)

    def apply(self, ctx: Context) -> None:
        located = ctx.module.containing_block(self.phi_id)
        assert located is not None
        _, block = located
        inst = next(i for i in block.instructions if i.result_id == self.phi_id)
        pairs = inst.phi_pairs()
        rotated = pairs[self.rotation :] + pairs[: self.rotation]
        inst.operands = [x for pair in rotated for x in pair]


@dataclass
class PropagateInstructionUp(Transformation):
    """Duplicate a pure instruction into each predecessor of its block and
    replace it with a phi over the copies (the Figure 8a transformation).

    Operands that are phis of the same block are rewritten to that phi's
    incoming value for each predecessor, exactly as in the paper's example.
    ``fresh_ids`` maps predecessor labels to the ids of the copies; the phi
    reuses the original instruction's id, so downstream uses are untouched.
    """

    type_name = "PropagateInstructionUp"

    instruction_id: int
    fresh_ids: dict[int, int] = field(default_factory=dict)

    def precondition(self, ctx: Context) -> bool:
        located = ctx.module.containing_block(self.instruction_id)
        if located is None:
            return False
        function, block = located
        inst = next(
            i for i in block.instructions if i.result_id == self.instruction_id
        )
        if inst.opcode not in PURE_OPS or inst.opcode is Op.Phi:
            return False
        preds = function.predecessors(block.label_id)
        if not preds or block is function.entry_block():
            return False
        if block.label_id in preds:
            return False  # self-loops would put the copy after its own use
        mapped = {int(k): int(v) for k, v in self.fresh_ids.items()}
        if not set(preds) <= set(mapped):
            return False
        fresh = [mapped[p] for p in preds]
        if not ctx.all_fresh_distinct(fresh):
            return False
        # Every operand must be rewritable per predecessor: either a phi of
        # this block (use its incoming value) or available at each pred's end.
        availability = ctx.availability(function)
        block_phis = {p.result_id: p for p in block.phis()}
        for kind, operand in inst.operand_slots():
            from repro.ir.opcodes import OperandKind

            if kind is not OperandKind.ID:
                continue
            operand_id = int(operand)
            if operand_id in block_phis:
                continue
            for pred in preds:
                if not availability.available_at(operand_id, pred, None):
                    return False
        return True

    def apply(self, ctx: Context) -> None:
        from repro.ir.opcodes import OperandKind, op_info

        located = ctx.module.containing_block(self.instruction_id)
        assert located is not None
        function, block = located
        inst = next(
            i for i in block.instructions if i.result_id == self.instruction_id
        )
        preds = function.predecessors(block.label_id)
        mapped = {int(k): int(v) for k, v in self.fresh_ids.items()}
        block_phis = {p.result_id: p for p in block.phis()}

        pairs: list[int] = []
        for pred in preds:
            copy_id = ctx.module.claim_id(mapped[pred])
            copy = inst.clone()
            copy.result_id = copy_id
            # Rewrite operands for this predecessor.
            info = op_info(copy.opcode)
            index = 0
            for kind in info.operands:
                if kind is OperandKind.ID:
                    operand_id = int(copy.operands[index])
                    phi = block_phis.get(operand_id)
                    if phi is not None:
                        incoming = dict(
                            (p, v) for v, p in phi.phi_pairs()
                        )
                        copy.operands[index] = incoming[pred]
                    index += 1
                elif kind in (OperandKind.LITERAL,):
                    index += 1
                else:
                    for rest in range(index, len(copy.operands)):
                        if kind in (OperandKind.ID_REST, OperandKind.OPTIONAL_ID):
                            operand_id = int(copy.operands[rest])
                            phi = block_phis.get(operand_id)
                            if phi is not None:
                                incoming = dict((p, v) for v, p in phi.phi_pairs())
                                copy.operands[rest] = incoming[pred]
                    index = len(copy.operands)
            pred_block = function.block(pred)
            pred_block.instructions.append(copy)
            pairs.extend([copy_id, pred])

        block.instructions.remove(inst)
        phi = Instruction(Op.Phi, self.instruction_id, inst.type_id, pairs)
        block.instructions.insert(len(block.phis()), phi)
