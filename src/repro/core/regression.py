"""Regression-test export (§2.1, "Bug reports and regression tests").

The pair of programs used to report a bug "provides a natural regression
test that can be added to the compiler's test suite or to a conformance test
suite": execute both programs on their respective inputs and check that
their results are the same.  This module renders a finding + reduction into
a standalone pytest file embedding both programs as assembly text — our
analogue of the 34 Vulkan CTS tests the authors contributed.
"""

from __future__ import annotations

import json

from repro.core.harness import Finding
from repro.core.reducer import ReductionResult, replay
from repro.ir.printer import disassemble

_TEMPLATE = '''"""Auto-generated regression test.

Target:    {target}
Signature: {signature}
Kind:      {kind}
Minimal transformation types: {types}

The two embedded programs are semantically equivalent by construction
(Theorem 2.6): the variant was derived from the original by replaying a
1-minimal sequence of semantics-preserving transformations.  A conforming
implementation must produce identical results for both.
"""

from repro.interp import execute
from repro.ir import assemble

ORIGINAL = """\\
{original_asm}"""

VARIANT = """\\
{variant_asm}"""

ORIGINAL_INPUTS = {original_inputs}
VARIANT_INPUTS = {variant_inputs}


def test_equivalent_results():
    original = execute(assemble(ORIGINAL), ORIGINAL_INPUTS)
    variant = execute(assemble(VARIANT), VARIANT_INPUTS)
    assert original.agrees_with(variant), (
        "the original and minimally transformed program must agree"
    )
'''


def export_regression_test(finding: Finding, reduction: ReductionResult) -> str:
    """Render a standalone pytest module for *finding*'s reduced form."""
    ctx = replay(finding.original, finding.inputs, reduction.transformations)
    return _TEMPLATE.format(
        target=finding.target_name,
        signature=finding.signature,
        kind=finding.kind,
        types=[t.type_name for t in reduction.transformations],
        original_asm=disassemble(finding.original),
        variant_asm=disassemble(ctx.module),
        original_inputs=json.dumps(finding.inputs),
        variant_inputs=json.dumps(ctx.inputs),
    )
