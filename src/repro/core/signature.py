"""Crash-signature extraction (§3.4, modelled on gfauto's signature_util).

Crash messages carry variable noise — result ids, counts, addresses — that
must not split one bug into many signatures.  The extractor keeps the first
line, strips ids/numbers/hex addresses, and collapses whitespace.
"""

from __future__ import annotations

import re

#: The single signature shared by all miscompilations: the paper notes that
#: all miscompilations contribute one signature because nothing in a wrong
#: image identifies the root cause.
MISCOMPILATION_SIGNATURE = "miscompilation"

_HEX_RE = re.compile(r"0x[0-9a-fA-F]+")
_ID_RE = re.compile(r"%\d+")
_NUM_RE = re.compile(r"\b\d+\b")
_WS_RE = re.compile(r"\s+")


def crash_signature(message: str) -> str:
    """Derive a stable signature from a crash/assertion message."""
    first_line = message.strip().splitlines()[0] if message.strip() else "empty-crash"
    cleaned = _HEX_RE.sub("ADDR", first_line)
    cleaned = _ID_RE.sub("ID", cleaned)
    cleaned = _NUM_RE.sub("N", cleaned)
    cleaned = _WS_RE.sub(" ", cleaned).strip()
    return cleaned


def invalid_ir_signature(errors: tuple[str, ...] | list[str]) -> str:
    """Signature for 'tool emitted invalid IR' findings."""
    if not errors:
        return "invalid-ir"
    return "invalid-ir: " + crash_signature(errors[0])


#: All hangs share one signature: a probe that never answers carries no
#: message, so (like miscompilations) nothing distinguishes root causes.
TIMEOUT_SIGNATURE = "probe-timeout"

#: Likewise for memory blow-ups — the allocation site is lost with the probe.
RESOURCE_SIGNATURE = "probe-resource"


def timeout_signature(message: str = "") -> str:
    """Signature for supervised probes that exceeded their wall-clock bound."""
    return TIMEOUT_SIGNATURE


def resource_signature(message: str = "") -> str:
    """Signature for supervised probes that exceeded their memory cap."""
    return RESOURCE_SIGNATURE


def worker_crash_signature(message: str) -> str:
    """Signature for probe workers that died hard (signal, ``os._exit``,
    unhandled exception).  The detail, when present, distinguishes e.g. an
    unhandled ``ZeroDivisionError`` from a segfault."""
    if not message.strip():
        return "worker-crash"
    return "worker-crash: " + crash_signature(message)
