"""Synthetic ``ReducedTest`` corpora for the dedup-at-scale benchmark.

Real campaigns produce findings whose transformation-type sets cluster
heavily: a handful of root causes each spray thousands of near-identical
reduced tests, with a long tail of rarer families, occasional flaky
(nondeterministic) verdicts, and the odd empty-type test.  The generator
reproduces that shape deterministically (``random.Random(seed)``, no
wall-clock anywhere) so benchmark runs and property tests are
repeatable byte-for-byte.
"""

from __future__ import annotations

import random

from repro.core.dedup import ReducedTest

__all__ = ["synthetic_reduced_tests"]


def synthetic_reduced_tests(
    count: int,
    *,
    families: int = 400,
    type_universe: int = 1200,
    min_types: int = 1,
    max_types: int = 6,
    mutate_fraction: float = 0.10,
    nondet_fraction: float = 0.05,
    empty_fraction: float = 0.01,
    seed: int = 0,
) -> list[ReducedTest]:
    """*count* findings drawn from *families* skewed type-set clusters.

    Family popularity follows a cubed-uniform skew (a few families
    dominate, as real dedup corpora do); ``mutate_fraction`` of the
    draws perturb their family's set by one type, producing the
    near-identical neighbours the LSH sketch buckets.
    """
    rng = random.Random(seed)
    names = [f"T{i:04d}" for i in range(type_universe)]
    pool: list[frozenset[str]] = []
    for _ in range(families):
        size = rng.randint(min_types, max_types)
        pool.append(frozenset(rng.sample(names, size)))
    tests: list[ReducedTest] = []
    for i in range(count):
        if rng.random() < empty_fraction:
            types: frozenset[str] = frozenset()
        else:
            family = pool[min(families - 1, int(families * rng.random() ** 3))]
            if rng.random() < mutate_fraction and family:
                mutated = set(family)
                if rng.random() < 0.5 and len(mutated) > 1:
                    mutated.discard(rng.choice(sorted(mutated)))
                else:
                    mutated.add(rng.choice(names))
                types = frozenset(mutated)
            else:
                types = family
        tests.append(
            ReducedTest(
                test_id=f"s{i:07d}",
                types=types,
                nondeterministic=rng.random() < nondet_fraction,
            )
        )
    return tests
