"""Test-case deduplication (Figure 6, refined per §3.5).

Given a set of *reduced* test cases, pick a subset to investigate such that
no two chosen tests share a transformation type.  Types on the fixed ignore
list (:data:`repro.core.transformation.SUPPORTING_TYPES`) are disregarded
entirely; tests whose effective type set is empty are never selected (they
carry no signal) and never block others.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Sequence

from repro.core.transformation import SUPPORTING_TYPES, Transformation
from repro.observability import as_tracer


def type_signature_of(types: Iterable[str]) -> str:
    """A stable blake2b digest over the *sorted* type names.

    Equal type sets always produce equal signatures (sorting removes
    set-iteration order; a NUL separator removes concatenation
    ambiguity), so the digest is usable as a dedup-journal key and as
    the seed for the minhash sketch in :mod:`repro.core.dedup_scale`.
    """
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(types):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class ReducedTest:
    """One reduced test case: an identifier plus its transformation types.

    ``ground_truth_bug`` is optional evaluation-only metadata (the injected
    bug id or crash signature the test is known to trigger); the algorithm
    itself never reads it.
    """

    test_id: str
    types: frozenset[str]
    ground_truth_bug: str | None = None
    #: Tests whose verdict was flaky across reruns (see
    #: :mod:`repro.robustness.retry`), plus tests whose *reduction* was
    #: degraded or observed oracle disagreements (see
    #: :func:`~repro.robustness.reduction.reduce_with_faults` and
    #: :meth:`from_reduction`).  Deduplicated separately: a flaky test must
    #: neither suppress a stable one nor be suppressed by it — their
    #: "shared type" evidence is unreliable, and a degraded (non-1-minimal)
    #: reduction carries leftover transformation types that would suppress
    #: unrelated stable tests.
    nondeterministic: bool = False

    @cached_property
    def type_signature(self) -> str:
        """Cached :func:`type_signature_of` over this test's types.
        (``cached_property`` writes the instance ``__dict__`` directly,
        which frozen dataclasses permit; equality and hashing still
        compare fields only.)"""
        return type_signature_of(self.types)

    @classmethod
    def from_transformations(
        cls,
        test_id: str,
        transformations: Sequence[Transformation],
        ground_truth_bug: str | None = None,
        *,
        ignore: frozenset[str] = SUPPORTING_TYPES,
        nondeterministic: bool = False,
    ) -> "ReducedTest":
        types = frozenset(
            t.type_name for t in transformations if t.type_name not in ignore
        )
        return cls(test_id, types, ground_truth_bug, nondeterministic)

    @classmethod
    def from_reduction(
        cls,
        test_id: str,
        finding: "object",
        reduction: "object",
        *,
        ignore: frozenset[str] = SUPPORTING_TYPES,
    ) -> "ReducedTest":
        """Build a :class:`ReducedTest` from a finding and its
        :class:`~repro.core.reducer.ReductionResult`, folding reduction
        quality into the ``nondeterministic`` flag.

        A test lands in the unreliable pool when *any* of: the finding's
        verdict was flaky across reruns; the reduction ``degraded`` (its
        surviving types are not 1-minimal, so they over-claim); or the
        flake-hardened oracle recorded verdict ``disagreements`` during the
        reduction (the types that survived depended on which probe you
        believe).
        """
        stability = reduction.stability or {}
        unreliable = bool(
            getattr(finding, "nondeterministic", False)
            or reduction.degraded is not None
            or stability.get("disagreements", 0)
        )
        return cls.from_transformations(
            test_id,
            reduction.transformations,
            getattr(finding, "ground_truth_bug", None),
            ignore=ignore,
            nondeterministic=unreliable,
        )


@dataclass
class DedupResult:
    """Outcome of one deduplication run."""

    to_investigate: list[ReducedTest] = field(default_factory=list)
    skipped_empty: int = 0

    @property
    def report_count(self) -> int:
        return len(self.to_investigate)


def deduplicate(
    tests: Sequence[ReducedTest], *, tracer: "object | None" = None
) -> DedupResult:
    """The Figure 6 algorithm.

    While tests remain, pick a test with the smallest (nonzero) number of
    transformation types, add it to the investigation set, and discard every
    test sharing a type with it.  Ties are broken by test id for determinism.

    Stable and ``nondeterministic`` tests are deduplicated as separate
    pools: a flaky verdict is weak evidence, so it must not suppress (or be
    suppressed by) a stable test that happens to share a transformation
    type.  Degraded or disagreement-tainted *reductions* (see
    :meth:`ReducedTest.from_reduction`) are partitioned the same way — their
    surviving transformation types are either over-approximate (not
    1-minimal) or oracle-dependent.  Stable picks come first in the
    investigation list.

    ``tracer`` (a :class:`~repro.observability.Tracer`, path, or ``None``)
    emits one ``dedup.pick`` event per selected test — which test was
    chosen and how many it suppressed — plus ``dedup.begin``/``dedup.end``
    bracketing the run; the selection itself is unaffected.
    """
    tracer = as_tracer(tracer)
    tracer.emit("dedup.begin", tests=len(tests))
    result = DedupResult()
    for pool, group in (
        ("stable", [t for t in tests if not t.nondeterministic]),
        ("nondeterministic", [t for t in tests if t.nondeterministic]),
    ):
        # Empty-type tests are dropped before the scan ever starts (they
        # can neither be picked nor block anyone), and the survivors are
        # sorted once: filtering a sorted list preserves its order, so
        # the head of ``remaining`` is always the next pick and the old
        # per-pick re-sort + smallest-size rescan is redundant.
        remaining = [t for t in group if t.types]
        result.skipped_empty += len(group) - len(remaining)
        remaining.sort(key=lambda t: (len(t.types), t.test_id))

        while remaining:
            chosen = remaining[0]
            result.to_investigate.append(chosen)
            before = len(remaining)
            chosen_types = chosen.types
            # ``isdisjoint`` short-circuits on the first shared type;
            # the old ``t.types & chosen.types`` built the whole
            # intersection just to test truthiness.
            remaining = [
                t for t in remaining if t.types.isdisjoint(chosen_types)
            ]
            if tracer.enabled:
                tracer.emit(
                    "dedup.pick",
                    pool=pool,
                    test_id=chosen.test_id,
                    types=sorted(chosen.types),
                    suppressed=before - len(remaining) - 1,
                )
    tracer.emit(
        "dedup.end",
        tests=len(tests),
        reports=result.report_count,
        skipped_empty=result.skipped_empty,
    )
    return result


def score_against_ground_truth(
    tests: Sequence[ReducedTest], result: DedupResult
) -> dict[str, int]:
    """Table 4's columns: Tests / Sigs / Reports / Distinct / Dups.

    Requires ``ground_truth_bug`` on every test.
    """
    signatures = {t.ground_truth_bug for t in tests if t.ground_truth_bug}
    chosen_bugs = [
        t.ground_truth_bug for t in result.to_investigate if t.ground_truth_bug
    ]
    distinct = len(set(chosen_bugs))
    return {
        "tests": len(tests),
        "sigs": len(signatures),
        "reports": result.report_count,
        "distinct": distinct,
        "dups": result.report_count - distinct,
    }
