"""Streaming, sketch-indexed deduplication at campaign scale.

:func:`repro.core.dedup.deduplicate` is the paper's Figure 6 picker: a
greedy scan that re-sorts and re-filters the whole corpus after every
pick — O(n²) set-disjointness comparisons, and the corpus must be fully
materialized first.  That is fine for hundreds of reduced tests and
hopeless for the ~10^6 findings a service campaign can now produce.

:class:`StreamingDedup` maintains the *same* pick set online, one finding
at a time, in three layers:

**Layer 1 — exact incremental picker.**  The batch algorithm is greedy
maximal-independent-set construction in priority order, where the
priority of a test is ``(len(types), test_id)`` and two tests conflict
when their type sets intersect.  Its outcome has an order-free
characterization: *a test is picked iff no picked test of strictly lower
priority shares a type with it.*  The streaming engine maintains exactly
that fixpoint under insertions:

* tests are *group-compressed* by their type-set signature
  (:func:`repro.core.dedup.type_signature_of`) — only a group's
  representative (its minimal ``test_id``) can ever be picked, every
  other member is a suppressed duplicate;
* an **owner map** ``type -> picked group`` answers "which pick blocks
  this candidate?" in O(|types|), because picks are pairwise disjoint so
  each type has at most one picked owner;
* an **inverted index** ``type -> groups containing it`` drives the
  *cascade*: when a new low-priority arrival evicts a picked group, the
  groups that pick may have been suppressing are re-evaluated through a
  priority heap.  Re-evaluations pop in strictly increasing priority, so
  a candidate found blocked can never be unblocked later in the same
  cascade (its blocker has lower priority than every remaining pop and
  evictions only ever remove *higher*-priority picks) — each group is
  settled once per cascade.

The final pick set is therefore independent of arrival order and equal
to ``deduplicate()`` over the same multiset; the *per-arrival decision
log* is additionally deterministic under a pinned arrival order, which
is what the decision journal records.

**Layer 2 — minhash/LSH sketch.**  Near-identical findings (the common
case at scale: thousands of tests collapsing onto a few type families)
are pre-bucketed by a banded minhash sketch over their type sets.  On
arrival the sketch proposes likely-overlapping picked groups before the
owner map is consulted; a proposal only ever suppresses after an *exact*
``frozenset`` intersection check, so sketching is a routing hint and can
never change a pick — identical type sets always share every band
(identical minhashes), and dissimilar sets collide only at the standard
banded rate ``P(J) = 1 - (1 - J^r)^b`` for Jaccard similarity ``J``,
``b`` bands of ``r`` rows.

**Layer 3 — streaming frontend.**  :func:`iter_stream_tests` yields
``ReducedTest`` records one at a time from campaign journals (PR 2) and
trace files (PR 3) without materializing the corpus, and
:class:`DedupJournal` gives the engine an fsync-per-decision log in the
repo's sealed-JSONL idiom: after ``SIGKILL`` at any instant, re-running
the same stream with ``resume=True`` verifies the journaled prefix
decision-by-decision (a divergent stream raises) and appends exactly the
records the killed run never wrote — the caught-up journal is
byte-identical to an uninterrupted run's, and so is the pick set.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.dedup import (
    DedupResult,
    ReducedTest,
    type_signature_of,
)
from repro.core.transformation import SUPPORTING_TYPES
from repro.observability import as_tracer
from repro.robustness.chaos import REAL_FILEOPS, FileOps
from repro.robustness.journal import parse_record, seal_record

DEDUP_JOURNAL_VERSION = 1

_POOLS = ("stable", "nondeterministic")


# -- layer 2: the minhash/LSH sketch ----------------------------------------


@dataclass(frozen=True)
class SketchConfig:
    """Banded-minhash parameters: ``lanes`` hash lanes split into
    ``bands`` bands of ``lanes // bands`` rows.  Two sets collide (share
    at least one band bucket) with probability ``1 - (1 - J^r)^b`` at
    Jaccard similarity ``J`` — equal sets always collide, and the
    default 16 lanes / 4 bands keeps the false-bucket rate for J=0.5
    near 23% while J=0.9 collides >95% of the time."""

    lanes: int = 16
    bands: int = 4

    @property
    def rows(self) -> int:
        return self.lanes // self.bands

    def collision_probability(self, jaccard: float) -> float:
        """The documented banded-LSH collision rate at similarity J."""
        return 1.0 - (1.0 - jaccard**self.rows) ** self.bands


class TypeSketch:
    """Banded minhash buckets over type sets, keyed by group signature.

    Per-type lane values are blake2b digests salted per lane and cached
    (type universes are small; findings are many).  ``query_insert``
    returns previously inserted signatures sharing at least one band
    bucket, in first-insertion order for determinism.
    """

    def __init__(self, config: SketchConfig) -> None:
        self.config = config
        self._lane_cache: dict[str, tuple[int, ...]] = {}
        self._buckets: dict[tuple[int, bytes], list[str]] = {}
        self.inserted = 0
        self.queried = 0

    def _lanes(self, type_name: str) -> tuple[int, ...]:
        lanes = self._lane_cache.get(type_name)
        if lanes is None:
            data = type_name.encode("utf-8")
            lanes = tuple(
                int.from_bytes(
                    hashlib.blake2b(
                        data, digest_size=8, salt=b"lane%04d" % i
                    ).digest(),
                    "big",
                )
                for i in range(self.config.lanes)
            )
            self._lane_cache[type_name] = lanes
        return lanes

    def minhash(self, types: Iterable[str]) -> tuple[int, ...]:
        per_type = [self._lanes(name) for name in types]
        return tuple(min(values) for values in zip(*per_type))

    def band_keys(self, types: Iterable[str]) -> list[tuple[int, bytes]]:
        minhash = self.minhash(types)
        rows = self.config.rows
        keys = []
        for band in range(self.config.bands):
            chunk = minhash[band * rows : (band + 1) * rows]
            digest = hashlib.blake2b(
                b"".join(value.to_bytes(8, "big") for value in chunk),
                digest_size=8,
            ).digest()
            keys.append((band, digest))
        return keys

    def query_insert(self, sig: str, types: frozenset[str]) -> list[str]:
        """Near-duplicate candidates for *types*, then insert *sig*."""
        self.queried += 1
        seen: dict[str, None] = {}
        for key in self.band_keys(types):
            bucket = self._buckets.setdefault(key, [])
            for other in bucket:
                if other != sig:
                    seen.setdefault(other)
            bucket.append(sig)
        self.inserted += 1
        return list(seen)

    def stats(self) -> dict:
        sizes = [len(bucket) for bucket in self._buckets.values()]
        return {
            "buckets": len(sizes),
            "inserted": self.inserted,
            "queried": self.queried,
            "max_bucket": max(sizes, default=0),
        }


# -- the decision journal ----------------------------------------------------


class DedupJournal:
    """Append-only sealed-JSONL log of per-arrival dedup decisions.

    Line 1 is a header binding the file to one input stream (``stream``
    key); every further line is one decision record in arrival order.
    Follows :class:`~repro.robustness.journal.ReductionJournal`'s
    resume discipline: a trailing line torn by a mid-write ``SIGKILL``
    is truncated *in place* so the caught-up journal stays byte-identical
    to an uninterrupted run's, and a journal written for a different
    stream raises ``ValueError``.
    """

    def __init__(
        self, path: Path | str, *, fileops: FileOps | None = None
    ) -> None:
        self.path = Path(path)
        self.fileops = fileops if fileops is not None else REAL_FILEOPS

    def append(self, record: dict) -> None:
        fileops = self.fileops
        with fileops.open(self.path, "ab") as handle:
            fileops.write(handle, seal_record(record))
            fileops.fsync(handle)

    def prepare(self, stream_key: str, *, resume: bool) -> list[dict]:
        """Open the journal; return the already-decided prefix in order.

        ``resume=False`` discards any existing content and writes a
        fresh header.  ``resume=True`` loads the existing decisions (the
        engine re-verifies each against the live stream) after repairing
        a torn tail in place.
        """
        fileops = self.fileops
        header = {
            "v": DEDUP_JOURNAL_VERSION,
            "header": True,
            "kind": "dedup-stream",
            "stream": stream_key,
        }
        if not resume or not self.path.exists():
            with fileops.open(self.path, "wb") as handle:
                fileops.write(handle, seal_record(header))
                fileops.fsync(handle)
            return []
        data = self.path.read_bytes()
        # Keep only the longest valid prefix: the header plus decisions
        # whose ``i`` values are contiguous from 0.  Anything past the
        # first torn, garbled, or discontiguous line — including the
        # line itself — is truncated *in place* and rewritten by the
        # replay, so the caught-up journal is byte-identical to an
        # uninterrupted run's no matter where corruption struck.
        decisions: list[dict] = []
        seen_header = False
        keep = 0
        offset = 0
        for raw in data.splitlines(keepends=True):
            end = offset + len(raw)
            record = (
                parse_record(raw.decode("utf-8", errors="replace"))
                if raw.endswith(b"\n")
                else None
            )
            if not seen_header:
                if record is None or not record.get("header"):
                    break
                if record.get("stream") != stream_key:
                    raise ValueError(
                        "dedup journal was written for a different input "
                        "stream — resume with the stream that produced it"
                    )
                seen_header = True
            elif (
                record is None
                or record.get("header")
                or record.get("i") != len(decisions)
                or "action" not in record
            ):
                break
            else:
                decisions.append(record)
            keep = end
            offset = end
        if not seen_header:
            with fileops.open(self.path, "wb") as handle:
                fileops.write(handle, seal_record(header))
                fileops.fsync(handle)
            return []
        if keep < len(data):
            with fileops.open(self.path, "r+b") as handle:
                handle.truncate(keep)
                fileops.fsync(handle)
        return decisions


# -- layer 1: the exact incremental picker -----------------------------------


class _Group:
    """All tests sharing one type-set signature within one pool.  Only
    the representative (minimal ``test_id``) is ever pick-eligible.

    ``priority`` is materialized (not recomputed per comparison) and
    groups are keyed by their ``frozenset`` directly on the hot path —
    frozensets cache their hash, so the expensive blake2b signature is
    computed once per *distinct type set*, not once per finding."""

    __slots__ = ("sig", "types", "rep", "members", "picked", "priority")

    def __init__(self, sig: str, types: frozenset[str], rep: ReducedTest):
        self.sig = sig
        self.types = types
        self.rep = rep
        self.members = 1
        self.picked = False
        self.priority = (len(types), rep.test_id)


@dataclass
class DedupStats:
    """Counters for one streaming run.  ``evictions``/``repicks`` are
    arrival-order-dependent (live/trace visibility only); everything
    else is a function of the input multiset."""

    candidates: int = 0
    skipped_empty: int = 0
    duplicates: int = 0
    suppressed: int = 0
    comparisons: int = 0
    evictions: int = 0
    repicks: int = 0
    sketch_suppressions: int = 0
    pool_candidates: dict = field(
        default_factory=lambda: dict.fromkeys(_POOLS, 0)
    )

    def to_json(self, engine: "StreamingDedup") -> dict:
        payload = {
            "candidates": self.candidates,
            "picks": engine.pick_count(),
            "suppressed": self.suppressed,
            "duplicates": self.duplicates,
            "skipped_empty": self.skipped_empty,
            "comparisons": self.comparisons,
            "evictions": self.evictions,
            "repicks": self.repicks,
            "groups": engine.group_count(),
            "pool_candidates": dict(self.pool_candidates),
            "pool_picks": {
                name: engine.pick_count(name) for name in _POOLS
            },
        }
        sketch = engine.sketch_stats()
        if sketch is not None:
            payload["sketch"] = dict(
                sketch, suppressions=self.sketch_suppressions
            )
        return payload


class _Pool:
    """One independent dedup pool (stable / nondeterministic)."""

    def __init__(
        self, name: str, sketch: SketchConfig | None, stats: DedupStats
    ) -> None:
        self.name = name
        self.stats = stats
        #: Hot-path group lookup, keyed by the type set itself.
        self.groups: dict[frozenset[str], _Group] = {}
        #: Signature -> group, for the sketch buckets and the heap.
        self.by_sig: dict[str, _Group] = {}
        self.owner: dict[str, _Group] = {}
        self.index: dict[str, list[_Group]] = {}
        self.sketch = TypeSketch(sketch) if sketch is not None else None

    # Every decision helper returns (action, detail) where detail is a
    # dict of order-deterministic extras for the journal/tracer.

    def ingest(self, test: ReducedTest, sig: str | None) -> tuple[str, dict]:
        self.stats.pool_candidates[self.name] += 1
        group = self.groups.get(test.types)
        if group is not None:
            return self._ingest_member(group, test)
        sig = type_signature_of(test.types) if sig is None else sig
        group = _Group(sig, test.types, test)
        self.groups[test.types] = group
        self.by_sig[sig] = group
        for type_name in test.types:
            self.index.setdefault(type_name, []).append(group)
        near: list[str] = []
        if self.sketch is not None:
            near = self.sketch.query_insert(sig, test.types)
            blocker = self._sketch_blocker(group, near)
            if blocker is not None:
                self.stats.suppressed += 1
                self.stats.sketch_suppressions += 1
                return "suppress", {
                    "by": blocker.rep.test_id,
                    "via": "sketch",
                    "shared": sorted(group.types & blocker.types),
                }
        return self._evaluate_arrival(group)

    def _ingest_member(
        self, group: _Group, test: ReducedTest
    ) -> tuple[str, dict]:
        group.members += 1
        if test.test_id >= group.rep.test_id:
            self.stats.duplicates += 1
            self.stats.suppressed += 1
            return "duplicate", {"by": group.rep.test_id}
        # A lower test_id joins: the representative (and the group's
        # priority) changes.  A picked group stays picked — same types,
        # strictly lower priority cannot acquire new blockers.
        superseded = group.rep.test_id
        group.rep = test
        group.priority = (len(group.types), test.test_id)
        if group.picked:
            return "pick", {"supersedes": superseded}
        action, detail = self._evaluate_arrival(group)
        detail["supersedes"] = superseded
        return action, detail

    def _sketch_blocker(
        self, group: _Group, near: Sequence[str]
    ) -> _Group | None:
        """A picked, lower-priority, *exactly verified* overlapping group
        from the sketch buckets — or ``None`` to fall through to the
        owner map.  Exact verification means this path reaches the same
        verdict the owner map would: it only ever reports a blocker the
        exact evaluation would also find."""
        priority = group.priority
        best: _Group | None = None
        for sig in near:
            other = self.by_sig.get(sig)
            if other is None or not other.picked:
                continue
            self.stats.comparisons += 1
            if other.priority < priority and not other.types.isdisjoint(
                group.types
            ):
                if best is None or other.priority < best.priority:
                    best = other
        return best

    def _blocker(self, group: _Group) -> _Group | None:
        """The lowest-priority picked group that blocks *group*, via the
        owner map — O(|types|) exact lookups."""
        priority = group.priority
        best: _Group | None = None
        for type_name in group.types:
            owner = self.owner.get(type_name)
            self.stats.comparisons += 1
            if owner is not None and owner.priority < priority:
                if best is None or owner.priority < best.priority:
                    best = owner
        return best

    def _evaluate_arrival(self, group: _Group) -> tuple[str, dict]:
        blocker = self._blocker(group)
        if blocker is not None:
            self.stats.suppressed += 1
            return "suppress", {
                "by": blocker.rep.test_id,
                "via": "owner",
                "shared": sorted(group.types & blocker.types),
            }
        evicted, repicked = self._pick(group)
        detail: dict = {}
        if evicted:
            detail["evicted"] = evicted
        if repicked:
            detail["repicked"] = repicked
        return "pick", detail

    def _pick(self, group: _Group) -> tuple[list[str], list[str]]:
        """Pick *group* (no blocker exists), evicting every picked group
        it conflicts with and cascading re-evaluation in priority order.
        Returns (evicted rep ids, cascade-repicked rep ids), each in
        settlement order."""
        evicted_ids: list[str] = []
        repicked_ids: list[str] = []
        heap: list[tuple[tuple[int, str], str]] = []

        def install(g: _Group) -> None:
            losers: dict[str, _Group] = {}
            for type_name in g.types:
                current = self.owner.get(type_name)
                if current is not None and current is not g:
                    losers[current.sig] = current
            for loser in losers.values():
                self._evict(loser, heap)
                evicted_ids.append(loser.rep.test_id)
            for type_name in g.types:
                self.owner[type_name] = g
            g.picked = True

        install(group)
        while heap:
            _, sig = heapq.heappop(heap)
            candidate = self.by_sig[sig]
            if candidate.picked:
                continue
            if self._blocker(candidate) is not None:
                continue  # settled: no later eviction can unblock it
            install(candidate)
            repicked_ids.append(candidate.rep.test_id)
            self.stats.repicks += 1
        return evicted_ids, repicked_ids

    def _evict(self, loser: _Group, heap: list) -> None:
        loser.picked = False
        self.stats.evictions += 1
        for type_name in loser.types:
            if self.owner.get(type_name) is loser:
                del self.owner[type_name]
            # Everything the eviction may have been suppressing becomes
            # a re-evaluation candidate; the heap orders them by
            # priority so each settles exactly once.
            for candidate in self.index.get(type_name, ()):
                if not candidate.picked:
                    heapq.heappush(heap, (candidate.priority, candidate.sig))

    def picks(self) -> list[ReducedTest]:
        chosen = [g.rep for g in self.groups.values() if g.picked]
        chosen.sort(key=lambda t: (len(t.types), t.test_id))
        return chosen

    def pick_count(self) -> int:
        return sum(1 for g in self.groups.values() if g.picked)


# -- layer 3: the streaming engine -------------------------------------------


class StreamingDedup:
    """Incremental Figure 6 picker; see the module docstring.

    ``journal`` (a path or :class:`DedupJournal`) turns on the durable
    decision log; with ``resume=True`` the engine verifies each incoming
    decision against the journaled prefix (raising ``ValueError`` on a
    divergent stream) and appends only past it.  ``sketch=None``
    disables layer 2 — picks are identical either way.
    """

    def __init__(
        self,
        *,
        sketch: SketchConfig | None = SketchConfig(),
        tracer: object | None = None,
        journal: DedupJournal | Path | str | None = None,
        resume: bool = False,
        stream_key: str = "",
    ) -> None:
        self.tracer = as_tracer(tracer)
        self.stats = DedupStats()
        self._sketch_config = sketch
        self._pools = {
            False: _Pool("stable", sketch, self.stats),
            True: _Pool("nondeterministic", sketch, self.stats),
        }
        self.journal: DedupJournal | None
        if journal is None:
            self.journal = None
            self._prefix: list[dict] = []
        else:
            self.journal = (
                journal
                if isinstance(journal, DedupJournal)
                else DedupJournal(journal)
            )
            self._prefix = self.journal.prepare(stream_key, resume=resume)
        self._arrivals = 0

    # -- ingest --------------------------------------------------------------

    def ingest(self, test: ReducedTest) -> str:
        """Feed one finding; returns the decision action (``pick`` /
        ``suppress`` / ``duplicate`` / ``skip``)."""
        index = self._arrivals
        self._arrivals += 1
        self.stats.candidates += 1
        # The per-arrival digest only matters when a decision record is
        # being produced; the pure in-memory hot path dedups on the
        # (hash-cached) frozenset itself and digests once per group.
        observed = self.journal is not None or self.tracer.enabled
        sig = test.type_signature if observed else None
        pool = self._pools[test.nondeterministic]
        if not test.types:
            self.stats.skipped_empty += 1
            action, detail = "skip", {}
        else:
            action, detail = pool.ingest(test, sig)
        if self.journal is not None:
            record = {
                "v": DEDUP_JOURNAL_VERSION,
                "i": index,
                "test": test.test_id,
                "sig": sig,
                "pool": pool.name,
                "action": action,
                **detail,
            }
            if index < len(self._prefix):
                if self._prefix[index] != record:
                    raise ValueError(
                        "dedup journal diverges from the input stream at "
                        f"arrival {index} (journaled "
                        f"{self._prefix[index].get('test')!r}, stream "
                        f"{test.test_id!r}) — resume with the stream that "
                        "wrote it"
                    )
            else:
                self.journal.append(record)
        if self.tracer.enabled and action != "skip":
            if action == "pick":
                self.tracer.emit(
                    "dedup.pick",
                    pool=pool.name,
                    test_id=test.test_id,
                    sig=sig,
                    types=sorted(test.types),
                    streamed=True,
                    **{
                        key: detail[key]
                        for key in ("evicted", "repicked", "supersedes")
                        if key in detail
                    },
                )
            else:
                self.tracer.emit(
                    "dedup.suppress",
                    pool=pool.name,
                    test_id=test.test_id,
                    by=detail.get("by"),
                    via=detail.get("via", "duplicate"),
                    shared=detail.get("shared", []),
                )
        return action

    def ingest_many(self, tests: Iterable[ReducedTest]) -> None:
        for test in tests:
            self.ingest(test)

    # -- results -------------------------------------------------------------

    def result(self) -> DedupResult:
        """The current pick set, shaped exactly like ``deduplicate()``'s:
        stable picks first, each pool ordered by ``(len(types), id)``."""
        result = DedupResult()
        for nondet in (False, True):
            result.to_investigate.extend(self._pools[nondet].picks())
        result.skipped_empty = self.stats.skipped_empty
        return result

    def pick_count(self, pool: str | None = None) -> int:
        if pool is not None:
            return next(
                p.pick_count()
                for p in self._pools.values()
                if p.name == pool
            )
        return sum(p.pick_count() for p in self._pools.values())

    def group_count(self) -> int:
        return sum(len(p.groups) for p in self._pools.values())

    def sketch_stats(self) -> dict | None:
        if self._sketch_config is None:
            return None
        merged: dict[str, int] = {}
        for pool in self._pools.values():
            for key, value in pool.sketch.stats().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def stats_json(self) -> dict:
        return self.stats.to_json(self)

    def emit_summary(self) -> dict:
        """Emit the ``dedup.stream`` summary event and return its payload
        (also the shape served by the service's ``/dedup`` endpoint)."""
        payload = self.stats_json()
        self.tracer.emit("dedup.stream", **payload)
        return payload


# -- streaming inputs --------------------------------------------------------


def reduced_tests_from_record(
    record: dict, *, ignore: frozenset[str] = SUPPORTING_TYPES
) -> list[ReducedTest]:
    """The findings of one campaign-journal seed record as
    :class:`ReducedTest` candidates, without rebuilding transformation
    objects — journal entries carry ``{"type": name, ...}`` dicts.

    Ids are ``<seed>:<target>:<k>`` with ``k`` counting findings per
    (seed, target), so they are stable across resumes and identical for
    journal- and trace-fed streams of the same campaign.  Types here are
    the *unreduced* transformation sets — the live-triage view; the
    service re-runs dedup over post-reduction sets during finalization.
    """
    tests: list[ReducedTest] = []
    counters: dict[str, int] = {}
    seed = record.get("seed")
    for entry in record.get("findings", ()):
        target = entry.get("target", "?")
        k = counters.get(target, 0)
        counters[target] = k + 1
        types = frozenset(
            t.get("type")
            for t in entry.get("transformations", ())
            if isinstance(t, dict) and isinstance(t.get("type"), str)
        )
        tests.append(
            ReducedTest(
                test_id=f"{seed}:{target}:{k}",
                types=frozenset(types - ignore),
                ground_truth_bug=entry.get("ground_truth_bug"),
                nondeterministic=bool(entry.get("nondeterministic", False)),
            )
        )
    return tests


def iter_stream_tests(
    path: Path | str, *, ignore: frozenset[str] = SUPPORTING_TYPES
) -> Iterator[ReducedTest]:
    """Findings from a campaign journal (PR 2) or trace file (PR 3), one
    :class:`ReducedTest` at a time in file (arrival) order.

    The format is auto-detected per line: trace events carry ``ev``
    (only ``finding`` events with a ``types`` list are candidates —
    traces written before types were recorded yield nothing); journal
    seed records carry ``seed``/``findings`` and are checksum-verified
    via :func:`~repro.robustness.journal.parse_record`.  Corrupt or
    foreign lines are skipped — a torn tail must not abort triage.
    """
    path = Path(path)
    counters: dict[tuple, int] = {}
    with path.open("r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if "crc" in record:
                record = parse_record(line)
                if record is None:
                    continue
            if "ev" in record:
                if record.get("ev") != "finding":
                    continue
                types = record.get("types")
                if not isinstance(types, list):
                    continue  # pre-PR-10 trace: findings carry no types
                seed = record.get("seed")
                target = record.get("target", "?")
                key = (seed, target)
                k = counters.get(key, 0)
                counters[key] = k + 1
                yield ReducedTest(
                    test_id=f"{seed}:{target}:{k}",
                    types=frozenset(
                        t for t in types if isinstance(t, str)
                    )
                    - ignore,
                    nondeterministic=bool(
                        record.get("nondeterministic", False)
                    ),
                )
            elif "seed" in record and "findings" in record:
                yield from reduced_tests_from_record(record, ignore=ignore)


def stream_key_for(paths: Sequence[Path | str]) -> str:
    """A stable identity for an input-path sequence, used to bind a
    decision journal to its stream."""
    digest = hashlib.blake2b(digest_size=12)
    for path in paths:
        digest.update(os.fspath(path).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def stream_dedup(
    paths: Sequence[Path | str],
    *,
    sketch: SketchConfig | None = SketchConfig(),
    tracer: object | None = None,
    journal: DedupJournal | Path | str | None = None,
    resume: bool = False,
    ignore: frozenset[str] = SUPPORTING_TYPES,
    ingest_delay: float = 0.0,
) -> StreamingDedup:
    """Run the streaming picker over journal/trace files in order.

    ``ingest_delay`` sleeps between arrivals — a testing aid so the
    SIGKILL-mid-dedup tests can interrupt a run deterministically."""
    engine = StreamingDedup(
        sketch=sketch,
        tracer=tracer,
        journal=journal,
        resume=resume,
        stream_key=stream_key_for(paths),
    )
    for path in paths:
        for test in iter_stream_tests(path, ignore=ignore):
            engine.ingest(test)
            if ingest_delay > 0.0:
                import time

                time.sleep(ingest_delay)
    return engine
