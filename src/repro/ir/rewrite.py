"""Structural rewriting utilities shared by optimizer passes and fuzzer
transformations: use replacement, block splitting, phi maintenance, and
function-call inlining with an explicit id mapping.

The explicit id mapping for inlining is load-bearing for the paper's
"maximize independence" design principle (§3.3): an ``InlineFunction``
transformation records the complete mapping from callee ids to fresh ids, so
its effect is insensitive to which *other* transformations survived test-case
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.module import Block, Function, Instruction, IrError, Module
from repro.ir.opcodes import Op


def replace_value_uses(module: Module, old_id: int, new_id: int) -> int:
    """Replace value uses of *old_id* with *new_id* module-wide.

    Phi predecessor slots and branch targets hold block labels, which are
    never value ids, so a plain operand sweep is safe; phi value slots are
    replaced.  Returns the number of replaced uses.
    """
    count = 0
    for function in module.functions:
        for block in function.blocks:
            for inst in block.all_instructions():
                if inst.opcode is Op.Phi:
                    for i in range(0, len(inst.operands), 2):
                        if int(inst.operands[i]) == old_id:
                            inst.operands[i] = new_id
                            count += 1
                elif inst.replace_uses(old_id, new_id):
                    count += 1
    for inst in module.global_insts:
        if inst.replace_uses(old_id, new_id):
            count += 1
    return count


def rewrite_phi_predecessor(block: Block, old_pred: int, new_pred: int) -> None:
    """Update phi incoming-predecessor labels in *block*."""
    for phi in block.phis():
        for i in range(1, len(phi.operands), 2):
            if int(phi.operands[i]) == old_pred:
                phi.operands[i] = new_pred


def remove_phi_predecessor(block: Block, pred: int) -> None:
    """Drop the incoming pair for *pred* from every phi in *block*.

    Phis left with a single incoming pair are kept (copy propagation cleans
    them up); phis left with no pairs would be invalid, so callers must only
    remove predecessors of blocks that still have at least one other.
    """
    for phi in block.phis():
        pairs = phi.phi_pairs()
        kept = [(v, p) for v, p in pairs if p != pred]
        if not kept:
            raise IrError(f"phi %{phi.result_id} would lose all incoming edges")
        phi.operands = [x for pair in kept for x in pair]


def split_block(
    function: Function, block: Block, index: int, new_label_id: int
) -> Block:
    """Split *block* before instruction *index*; the tail (including the
    terminator) moves to a new block with *new_label_id* and the original
    block branches to it.

    The split point must not fall inside the block's leading phis.  Phis in
    the original block's successors are rewired to name the new block as
    their predecessor.  Returns the new block.
    """
    phi_count = len(block.phis())
    if index < phi_count:
        raise IrError("cannot split a block inside its phi prefix")
    if not 0 <= index <= len(block.instructions):
        raise IrError(f"split index {index} out of range")
    new_block = Block(
        new_label_id, block.instructions[index:], block.terminator
    )
    for succ_label in block.successors():
        rewrite_phi_predecessor(function.block(succ_label), block.label_id, new_label_id)
    block.instructions = block.instructions[:index]
    block.terminator = Instruction(Op.Branch, None, None, [new_label_id])
    position = function.block_index(block.label_id)
    function.blocks.insert(position + 1, new_block)
    return new_block


@dataclass(frozen=True)
class InlinePlan:
    """Fresh ids needed to inline one call site.

    ``id_map`` maps every callee-defined id (block labels, instruction and
    parameter results — parameters map to the call's arguments and therefore
    must *not* appear) to a fresh id.  ``continue_label_id`` labels the block
    holding the instructions that followed the call.
    """

    id_map: dict[int, int]
    continue_label_id: int
    result_phi_id: int | None = None


def callee_ids_requiring_fresh(callee: Function) -> list[int]:
    """Ids an :class:`InlinePlan` must remap: labels and result ids of the
    callee's body (parameters excluded — they map to call arguments)."""
    ids: list[int] = []
    for block in callee.blocks:
        ids.append(block.label_id)
        for inst in block.all_instructions():
            if inst.result_id is not None:
                ids.append(inst.result_id)
    return ids


def make_inline_plan(module: Module, callee: Function) -> InlinePlan:
    """Allocate fresh ids for inlining *callee* (used by the optimizer; the
    fuzzer records plans inside transformations instead)."""
    id_map = {old: module.fresh_id() for old in callee_ids_requiring_fresh(callee)}
    return InlinePlan(id_map, module.fresh_id(), module.fresh_id())


def inline_call(
    module: Module,
    caller: Function,
    block: Block,
    call_inst: Instruction,
    plan: InlinePlan,
    *,
    buggy_first_arg_binding: bool = False,
) -> None:
    """Inline *call_inst* (an ``OpFunctionCall`` inside *block*) in place.

    The callee's blocks are cloned with ids rewritten through ``plan.id_map``;
    parameters are bound to the call's arguments (all of them to the first
    argument when ``buggy_first_arg_binding`` is set — an injected-bug hook).
    Callee-local variables migrate to the caller's entry block.  Multiple
    returns meet in the continue block through a phi with
    ``plan.result_phi_id``.
    """
    call_index = block.instructions.index(call_inst)
    callee = module.get_function(int(call_inst.operands[0]))
    args = [int(a) for a in call_inst.operands[1:]]

    binding = dict(plan.id_map)
    for i, param in enumerate(callee.params):
        assert param.result_id is not None
        bound = args[0] if (buggy_first_arg_binding and args) else args[i]
        binding[param.result_id] = bound

    continue_block = split_block(caller, block, call_index + 1, plan.continue_label_id)
    # Drop the call itself (it is now the last instruction of `block`).
    assert block.instructions and block.instructions[-1] is call_inst
    block.instructions.pop()

    cloned: list[Block] = []
    returns: list[tuple[int | None, int]] = []  # (value id or None, block label)
    for callee_block in callee.blocks:
        body = Block(binding[callee_block.label_id])
        for inst in callee_block.instructions:
            copy = inst.clone()
            copy.remap_ids(binding)
            body.instructions.append(copy)
        term = callee_block.terminator
        assert term is not None
        if term.opcode is Op.Return:
            returns.append((None, body.label_id))
            body.terminator = Instruction(Op.Branch, None, None, [plan.continue_label_id])
        elif term.opcode is Op.ReturnValue:
            value = binding.get(int(term.operands[0]), int(term.operands[0]))
            returns.append((value, body.label_id))
            body.terminator = Instruction(Op.Branch, None, None, [plan.continue_label_id])
        else:
            copy = term.clone()
            copy.remap_ids(binding)
            body.terminator = copy
        cloned.append(body)

    # Callee-local variables must live in the caller's entry block.
    caller_entry = caller.entry_block()
    insert_at = 0
    while (
        insert_at < len(caller_entry.instructions)
        and caller_entry.instructions[insert_at].opcode is Op.Variable
    ):
        insert_at += 1
    for body in cloned:
        kept: list[Instruction] = []
        for inst in body.instructions:
            if inst.opcode is Op.Variable:
                caller_entry.instructions.insert(insert_at, inst)
                insert_at += 1
            else:
                kept.append(inst)
        body.instructions = kept

    block.terminator = Instruction(
        Op.Branch, None, None, [binding[callee.entry_block().label_id]]
    )
    position = caller.block_index(block.label_id)
    caller.blocks[position + 1 : position + 1] = cloned

    # The continue block's predecessors are now the return blocks.
    value_returns = [(v, b) for v, b in returns if v is not None]
    if call_inst.result_id is not None and value_returns:
        if len(value_returns) == 1:
            replace_value_uses(module, call_inst.result_id, value_returns[0][0])
        else:
            phi_id = plan.result_phi_id
            if phi_id is None:
                raise IrError("inline plan lacks a result phi id")
            flat: list[int] = []
            for value, ret_block in value_returns:
                flat.extend([value, ret_block])
            phi = Instruction(Op.Phi, phi_id, call_inst.type_id, list(flat))
            continue_block.instructions.insert(0, phi)
            replace_value_uses(module, call_inst.result_id, phi_id)
