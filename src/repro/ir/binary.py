"""Binary (word-stream) codec for IR modules.

The format is SPIR-V-shaped: a 32-bit word stream with a magic number, a
version word and the id bound, followed by instructions whose first word packs
``word_count << 16 | opcode_index``.  Because our literals are typed Python
values (int / float / bool / str) rather than raw words, each literal operand
is preceded by a one-word tag — a deliberate, documented deviation from real
SPIR-V that keeps decoding unambiguous.

Entry-point and name metadata are serialised as ordinary ``OpEntryPoint`` /
``OpName`` instructions, so decode simply replays the stream through
:func:`repro.ir.parser.module_from_instructions`.
"""

from __future__ import annotations

import struct

from repro.ir.module import Instruction, Module, Operand
from repro.ir.opcodes import OP_INFO, Op, OperandKind
from repro.ir.printer import disassemble  # noqa: F401  (re-export convenience)
from repro.ir.parser import module_from_instructions

MAGIC = 0x4D53_5056  # "MSPV"
VERSION = 1

_OPS = list(Op)
_OP_INDEX = {op: i for i, op in enumerate(_OPS)}

_LIT_INT = 0
_LIT_FLOAT = 1
_LIT_BOOL = 2
_LIT_STR = 3


class BinaryError(Exception):
    """Raised for malformed binary modules."""


def _encode_literal(words: list[int], value: Operand) -> None:
    if isinstance(value, bool):
        words.extend([_LIT_BOOL, 1 if value else 0])
    elif isinstance(value, int):
        words.extend([_LIT_INT, value & 0xFFFFFFFF])
    elif isinstance(value, float):
        (bits,) = struct.unpack("<I", struct.pack("<f", value))
        words.extend([_LIT_FLOAT, bits])
    else:
        data = str(value).encode("utf-8") + b"\x00"
        padded = data + b"\x00" * (-len(data) % 4)
        words.append(_LIT_STR)
        words.append(len(padded) // 4)
        for i in range(0, len(padded), 4):
            (word,) = struct.unpack("<I", padded[i : i + 4])
            words.append(word)


def _decode_literal(words: list[int], pos: int) -> tuple[Operand, int]:
    tag = words[pos]
    if tag == _LIT_BOOL:
        return bool(words[pos + 1]), pos + 2
    if tag == _LIT_INT:
        raw = words[pos + 1]
        return raw - 0x1_0000_0000 if raw >= 0x8000_0000 else raw, pos + 2
    if tag == _LIT_FLOAT:
        (value,) = struct.unpack("<f", struct.pack("<I", words[pos + 1]))
        return value, pos + 2
    if tag == _LIT_STR:
        count = words[pos + 1]
        data = b"".join(struct.pack("<I", w) for w in words[pos + 2 : pos + 2 + count])
        return data.rstrip(b"\x00").decode("utf-8"), pos + 2 + count
    raise BinaryError(f"bad literal tag {tag}")


def _encode_instruction(inst: Instruction) -> list[int]:
    info = OP_INFO[inst.opcode]
    words: list[int] = [0]  # header patched below
    if info.has_type:
        assert inst.type_id is not None
        words.append(inst.type_id)
    if info.has_result:
        assert inst.result_id is not None
        words.append(inst.result_id)
    for kind, operand in inst.operand_slots():
        if kind is OperandKind.ID:
            words.append(int(operand))
        else:
            _encode_literal(words, operand)
    if len(words) >= 1 << 16:
        raise BinaryError("instruction too long")
    words[0] = (len(words) << 16) | _OP_INDEX[inst.opcode]
    return words


def _decode_instruction(words: list[int], pos: int) -> tuple[Instruction, int]:
    header = words[pos]
    word_count = header >> 16
    op_index = header & 0xFFFF
    if word_count == 0 or pos + word_count > len(words):
        raise BinaryError("truncated instruction")
    if op_index >= len(_OPS):
        raise BinaryError(f"unknown opcode index {op_index}")
    op = _OPS[op_index]
    info = OP_INFO[op]
    end = pos + word_count
    cursor = pos + 1
    type_id: int | None = None
    result_id: int | None = None
    if info.has_type:
        type_id = words[cursor]
        cursor += 1
    if info.has_result:
        result_id = words[cursor]
        cursor += 1

    operands: list[Operand] = []
    for kind in info.operands:
        if kind is OperandKind.ID:
            operands.append(words[cursor])
            cursor += 1
        elif kind is OperandKind.LITERAL:
            value, cursor = _decode_literal(words, cursor)
            operands.append(value)
        elif kind in (OperandKind.ID_REST, OperandKind.PHI_REST, OperandKind.OPTIONAL_ID):
            while cursor < end:
                operands.append(words[cursor])
                cursor += 1
        elif kind is OperandKind.LITERAL_REST:
            while cursor < end:
                value, cursor = _decode_literal(words, cursor)
                operands.append(value)
    if cursor != end:
        raise BinaryError(f"{op}: {end - cursor} unconsumed words")
    return Instruction(op, result_id, type_id, operands), end


def _module_stream(module: Module) -> list[Instruction]:
    stream: list[Instruction] = []
    if module.entry_point_id is not None:
        stream.append(
            Instruction(
                Op.EntryPoint,
                None,
                None,
                [module.entry_point_name, module.entry_point_id],
            )
        )
    for rid in sorted(module.names):
        stream.append(Instruction(Op.Name, None, None, [rid, module.names[rid]]))
    stream.extend(module.global_insts)
    for function in module.functions:
        stream.append(function.inst)
        stream.extend(function.params)
        for block in function.blocks:
            stream.append(Instruction(Op.Label, block.label_id))
            stream.extend(block.instructions)
            if block.terminator is not None:
                stream.append(block.terminator)
        stream.append(Instruction(Op.FunctionEnd))
    return stream


def encode(module: Module) -> bytes:
    """Serialise *module* to its binary form."""
    words: list[int] = [MAGIC, VERSION, module.id_bound]
    for inst in _module_stream(module):
        words.extend(_encode_instruction(inst))
    return b"".join(struct.pack("<I", w & 0xFFFFFFFF) for w in words)


def decode(data: bytes) -> Module:
    """Deserialise a binary module produced by :func:`encode`."""
    if len(data) % 4 != 0:
        raise BinaryError("binary size is not a multiple of 4")
    words = list(struct.unpack(f"<{len(data) // 4}I", data))
    if len(words) < 3:
        raise BinaryError("binary too short")
    if words[0] != MAGIC:
        raise BinaryError(f"bad magic 0x{words[0]:08x}")
    if words[1] != VERSION:
        raise BinaryError(f"unsupported version {words[1]}")
    id_bound = words[2]
    instructions: list[Instruction] = []
    pos = 3
    while pos < len(words):
        inst, pos = _decode_instruction(words, pos)
        instructions.append(inst)
    module = module_from_instructions(instructions)
    module.id_bound = max(module.id_bound, id_bound)
    return module
