"""Textual assembler for IR modules (inverse of :mod:`repro.ir.printer`).

Also exposes :func:`module_from_instructions`, the shared structuring pass
that turns a flat instruction stream into a :class:`Module`; the binary codec
reuses it.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.ir.module import Block, Function, Instruction, IrError, Module, Operand
from repro.ir.opcodes import OP_BY_NAME, OP_INFO, Op, OperandKind


class ParseError(Exception):
    """Raised for malformed assembly text or instruction streams."""

    def __init__(self, message: str, line_no: int | None = None) -> None:
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


_TOKEN_RE = re.compile(
    r"""
    \s*(
        %\d+                      # id
        | "(?:[^"\\]|\\.)*"       # quoted string
        | [^\s]+                  # bare word / number
    )
    """,
    re.VERBOSE,
)


def _tokenize(line: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(line):
        match = _TOKEN_RE.match(line, pos)
        if match is None:
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


_INT_RE = re.compile(r"^-?\d+$")
_FLOAT_RE = re.compile(r"^-?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


def _parse_literal(token: str) -> Operand:
    if token.startswith('"'):
        body = token[1:-1]
        return body.replace('\\"', '"').replace("\\\\", "\\")
    if token == "true":
        return True
    if token == "false":
        return False
    if _INT_RE.match(token):
        return int(token)
    if _FLOAT_RE.match(token) and ("." in token or "e" in token or "E" in token):
        return float(token)
    return token


def _parse_id(token: str, line_no: int) -> int:
    if not token.startswith("%"):
        raise ParseError(f"expected id, got {token!r}", line_no)
    return int(token[1:])


def parse_instruction(line: str, line_no: int = 0) -> Instruction:
    """Parse a single instruction line."""
    tokens = _tokenize(line)
    if not tokens:
        raise ParseError("empty instruction", line_no)
    result_id: int | None = None
    if len(tokens) >= 2 and tokens[0].startswith("%") and tokens[1] == "=":
        result_id = _parse_id(tokens[0], line_no)
        tokens = tokens[2:]
    if not tokens:
        raise ParseError("missing opcode", line_no)
    op = OP_BY_NAME.get(tokens[0])
    if op is None:
        raise ParseError(f"unknown opcode {tokens[0]!r}", line_no)
    info = OP_INFO[op]
    tokens = tokens[1:]
    type_id: int | None = None
    if info.has_type:
        if not tokens:
            raise ParseError(f"{op} missing result type", line_no)
        type_id = _parse_id(tokens[0], line_no)
        tokens = tokens[1:]

    operands: list[Operand] = []
    i = 0
    for kind in info.operands:
        if kind is OperandKind.ID:
            if i >= len(tokens):
                raise ParseError(f"{op} missing id operand", line_no)
            operands.append(_parse_id(tokens[i], line_no))
            i += 1
        elif kind is OperandKind.LITERAL:
            if i >= len(tokens):
                raise ParseError(f"{op} missing literal operand", line_no)
            operands.append(_parse_literal(tokens[i]))
            i += 1
        elif kind in (OperandKind.ID_REST, OperandKind.PHI_REST, OperandKind.OPTIONAL_ID):
            while i < len(tokens):
                operands.append(_parse_id(tokens[i], line_no))
                i += 1
        elif kind is OperandKind.LITERAL_REST:
            while i < len(tokens):
                operands.append(_parse_literal(tokens[i]))
                i += 1
    if i != len(tokens):
        raise ParseError(f"{op}: trailing operands {tokens[i:]}", line_no)
    try:
        return Instruction(op, result_id, type_id, operands)
    except IrError as exc:
        raise ParseError(str(exc), line_no) from exc


def module_from_instructions(instructions: Iterable[Instruction]) -> Module:
    """Structure a flat instruction stream into a :class:`Module`.

    ``OpEntryPoint`` and ``OpName`` instructions anywhere in the stream set
    module metadata; everything before the first ``OpFunction`` is a global
    declaration; functions are delimited by ``OpFunction``/``OpFunctionEnd``.
    """
    module = Module()
    current_function: Function | None = None
    current_block: Block | None = None

    for inst in instructions:
        op = inst.opcode
        if op is Op.EntryPoint:
            module.entry_point_name = str(inst.operands[0])
            module.entry_point_id = int(inst.operands[1])
            continue
        if op is Op.Name:
            module.names[int(inst.operands[0])] = str(inst.operands[1])
            continue
        if op is Op.Function:
            if current_function is not None:
                raise ParseError("nested OpFunction")
            current_function = Function(inst)
            module.functions.append(current_function)
            continue
        if op is Op.FunctionEnd:
            if current_function is None:
                raise ParseError("OpFunctionEnd outside function")
            if current_block is not None and current_block.terminator is None:
                raise ParseError("function ends with unterminated block")
            current_function = None
            current_block = None
            continue
        if op is Op.FunctionParameter:
            if current_function is None or current_function.blocks:
                raise ParseError("OpFunctionParameter outside function header")
            current_function.params.append(inst)
            continue
        if op is Op.Label:
            if current_function is None:
                raise ParseError("OpLabel outside function")
            if current_block is not None and current_block.terminator is None:
                raise ParseError("previous block not terminated")
            assert inst.result_id is not None
            current_block = Block(inst.result_id)
            current_function.blocks.append(current_block)
            continue

        if current_function is None:
            module.global_insts.append(inst)
            continue
        if current_block is None:
            raise ParseError("instruction before first OpLabel")
        if OP_INFO[op].is_terminator:
            if current_block.terminator is not None:
                raise ParseError("block already terminated")
            current_block.terminator = inst
        else:
            if current_block.terminator is not None:
                raise ParseError("instruction after terminator")
            current_block.instructions.append(inst)

    if current_function is not None:
        raise ParseError("missing OpFunctionEnd")

    max_id = 0
    for inst in module.all_instructions():
        if inst.result_id is not None:
            max_id = max(max_id, inst.result_id)
    module.id_bound = max_id + 1
    return module


def assemble(text: str) -> Module:
    """Parse assembly *text* into a :class:`Module`."""
    instructions: list[Instruction] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].strip()
        if not line:
            continue
        instructions.append(parse_instruction(line, line_no))
    return module_from_instructions(instructions)
