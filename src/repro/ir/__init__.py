"""Miniature SPIR-V-like SSA intermediate representation.

This package is the project's stand-in for SPIR-V plus SPIRV-Tools' module
handling: typed SSA instructions, basic blocks with dominance-ordered layout,
an assembler/disassembler, a binary codec, and a validator.
"""

from repro.ir.builder import BlockBuilder, FunctionBuilder, ModuleBuilder
from repro.ir.module import Block, Function, Instruction, IrError, Module
from repro.ir.opcodes import (
    FUNCTION_CONTROL_DONT_INLINE,
    FUNCTION_CONTROL_INLINE,
    FUNCTION_CONTROL_NONE,
    Op,
)
from repro.ir.parser import ParseError, assemble
from repro.ir.printer import diff_lines, disassemble, instruction_delta
from repro.ir.types import (
    ArrayType,
    BoolType,
    FloatType,
    FunctionType,
    IntType,
    PointerType,
    StorageClass,
    StructType,
    Type,
    VectorType,
    VoidType,
)
from repro.ir.validator import ValidationError, check, is_valid, validate

__all__ = [
    "ArrayType",
    "Block",
    "BlockBuilder",
    "BoolType",
    "FloatType",
    "Function",
    "FunctionBuilder",
    "FunctionType",
    "FUNCTION_CONTROL_DONT_INLINE",
    "FUNCTION_CONTROL_INLINE",
    "FUNCTION_CONTROL_NONE",
    "Instruction",
    "IntType",
    "IrError",
    "Module",
    "ModuleBuilder",
    "Op",
    "ParseError",
    "PointerType",
    "StorageClass",
    "StructType",
    "Type",
    "ValidationError",
    "VectorType",
    "VoidType",
    "assemble",
    "check",
    "diff_lines",
    "disassemble",
    "instruction_delta",
    "is_valid",
    "validate",
]
