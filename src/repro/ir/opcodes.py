"""Opcode definitions for the miniature SPIR-V-like IR.

Every instruction in the IR is an :class:`~repro.ir.module.Instruction` whose
shape is described by an :class:`OpInfo` entry in :data:`OP_INFO`.  The operand
signature drives generic machinery used throughout the project:

* the validator checks operand counts and kinds,
* the binary codec encodes/decodes operands without per-opcode special cases,
* id remapping (used by function inlining and donor import) walks operands and
  rewrites exactly those that are ids.

The opcode set is the subset of SPIR-V that the paper's transformations
exercise, plus the structural opcodes needed to hold a module together.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """Opcode mnemonics, named after their SPIR-V counterparts."""

    # Types.
    TypeVoid = "OpTypeVoid"
    TypeBool = "OpTypeBool"
    TypeInt = "OpTypeInt"
    TypeFloat = "OpTypeFloat"
    TypeVector = "OpTypeVector"
    TypeArray = "OpTypeArray"
    TypeStruct = "OpTypeStruct"
    TypePointer = "OpTypePointer"
    TypeFunction = "OpTypeFunction"

    # Constants.
    ConstantTrue = "OpConstantTrue"
    ConstantFalse = "OpConstantFalse"
    Constant = "OpConstant"
    ConstantComposite = "OpConstantComposite"
    Undef = "OpUndef"

    # Memory.
    Variable = "OpVariable"
    Load = "OpLoad"
    Store = "OpStore"
    AccessChain = "OpAccessChain"
    CopyObject = "OpCopyObject"

    # Integer arithmetic.
    IAdd = "OpIAdd"
    ISub = "OpISub"
    IMul = "OpIMul"
    SDiv = "OpSDiv"
    SRem = "OpSRem"
    SNegate = "OpSNegate"

    # Float arithmetic.
    FAdd = "OpFAdd"
    FSub = "OpFSub"
    FMul = "OpFMul"
    FDiv = "OpFDiv"
    FNegate = "OpFNegate"

    # Logical / comparison.
    LogicalAnd = "OpLogicalAnd"
    LogicalOr = "OpLogicalOr"
    LogicalNot = "OpLogicalNot"
    IEqual = "OpIEqual"
    INotEqual = "OpINotEqual"
    SLessThan = "OpSLessThan"
    SLessThanEqual = "OpSLessThanEqual"
    SGreaterThan = "OpSGreaterThan"
    SGreaterThanEqual = "OpSGreaterThanEqual"
    FOrdEqual = "OpFOrdEqual"
    FOrdNotEqual = "OpFOrdNotEqual"
    FOrdLessThan = "OpFOrdLessThan"
    FOrdLessThanEqual = "OpFOrdLessThanEqual"
    FOrdGreaterThan = "OpFOrdGreaterThan"
    FOrdGreaterThanEqual = "OpFOrdGreaterThanEqual"
    Select = "OpSelect"

    # Composites.
    CompositeConstruct = "OpCompositeConstruct"
    CompositeExtract = "OpCompositeExtract"
    CompositeInsert = "OpCompositeInsert"

    # Conversions.
    ConvertSToF = "OpConvertSToF"
    ConvertFToS = "OpConvertFToS"

    # Control flow.
    Phi = "OpPhi"
    Branch = "OpBranch"
    BranchConditional = "OpBranchConditional"
    Return = "OpReturn"
    ReturnValue = "OpReturnValue"
    Kill = "OpKill"
    Unreachable = "OpUnreachable"
    FunctionCall = "OpFunctionCall"

    # Structure.
    Function = "OpFunction"
    FunctionParameter = "OpFunctionParameter"
    Label = "OpLabel"
    FunctionEnd = "OpFunctionEnd"
    EntryPoint = "OpEntryPoint"
    Name = "OpName"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class OperandKind(enum.Enum):
    """Kind of a single operand slot in an instruction signature."""

    ID = "id"  # exactly one id
    LITERAL = "lit"  # exactly one literal (int, float, bool or str)
    ID_REST = "ids"  # zero or more ids; must be the final slot
    LITERAL_REST = "lits"  # zero or more literals; must be the final slot
    PHI_REST = "phi"  # (value id, predecessor block id) pairs, flattened
    OPTIONAL_ID = "opt_id"  # zero or one id; must be the final slot


_REST_KINDS = {
    OperandKind.ID_REST,
    OperandKind.LITERAL_REST,
    OperandKind.PHI_REST,
    OperandKind.OPTIONAL_ID,
}


@dataclass(frozen=True)
class OpInfo:
    """Static description of an opcode's shape."""

    op: "Op"
    operands: tuple[OperandKind, ...]
    has_result: bool
    has_type: bool
    is_terminator: bool = False

    def __post_init__(self) -> None:
        for kind in self.operands[:-1]:
            if kind in _REST_KINDS:
                raise ValueError(f"{self.op}: rest operand must be last")

    @property
    def is_type_decl(self) -> bool:
        return self.op.value.startswith("OpType")

    @property
    def is_constant_decl(self) -> bool:
        return self.op in (
            Op.ConstantTrue,
            Op.ConstantFalse,
            Op.Constant,
            Op.ConstantComposite,
            Op.Undef,
        )


_K = OperandKind


def _info(
    op: Op,
    operands: tuple[OperandKind, ...],
    *,
    result: bool,
    typed: bool,
    terminator: bool = False,
) -> tuple[Op, OpInfo]:
    return op, OpInfo(op, operands, result, typed, terminator)


OP_INFO: dict[Op, OpInfo] = dict(
    [
        # Types: result id, no result-type id.
        _info(Op.TypeVoid, (), result=True, typed=False),
        _info(Op.TypeBool, (), result=True, typed=False),
        _info(Op.TypeInt, (_K.LITERAL, _K.LITERAL), result=True, typed=False),
        _info(Op.TypeFloat, (_K.LITERAL,), result=True, typed=False),
        _info(Op.TypeVector, (_K.ID, _K.LITERAL), result=True, typed=False),
        _info(Op.TypeArray, (_K.ID, _K.LITERAL), result=True, typed=False),
        _info(Op.TypeStruct, (_K.ID_REST,), result=True, typed=False),
        _info(Op.TypePointer, (_K.LITERAL, _K.ID), result=True, typed=False),
        _info(Op.TypeFunction, (_K.ID, _K.ID_REST), result=True, typed=False),
        # Constants.
        _info(Op.ConstantTrue, (), result=True, typed=True),
        _info(Op.ConstantFalse, (), result=True, typed=True),
        _info(Op.Constant, (_K.LITERAL,), result=True, typed=True),
        _info(Op.ConstantComposite, (_K.ID_REST,), result=True, typed=True),
        _info(Op.Undef, (), result=True, typed=True),
        # Memory.
        _info(Op.Variable, (_K.LITERAL, _K.OPTIONAL_ID), result=True, typed=True),
        _info(Op.Load, (_K.ID,), result=True, typed=True),
        _info(Op.Store, (_K.ID, _K.ID), result=False, typed=False),
        _info(Op.AccessChain, (_K.ID, _K.ID_REST), result=True, typed=True),
        _info(Op.CopyObject, (_K.ID,), result=True, typed=True),
        # Integer arithmetic.
        _info(Op.IAdd, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.ISub, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.IMul, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.SDiv, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.SRem, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.SNegate, (_K.ID,), result=True, typed=True),
        # Float arithmetic.
        _info(Op.FAdd, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FSub, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FMul, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FDiv, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FNegate, (_K.ID,), result=True, typed=True),
        # Logical / comparison.
        _info(Op.LogicalAnd, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.LogicalOr, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.LogicalNot, (_K.ID,), result=True, typed=True),
        _info(Op.IEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.INotEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.SLessThan, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.SLessThanEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.SGreaterThan, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.SGreaterThanEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FOrdEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FOrdNotEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FOrdLessThan, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FOrdLessThanEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FOrdGreaterThan, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.FOrdGreaterThanEqual, (_K.ID, _K.ID), result=True, typed=True),
        _info(Op.Select, (_K.ID, _K.ID, _K.ID), result=True, typed=True),
        # Composites.
        _info(Op.CompositeConstruct, (_K.ID_REST,), result=True, typed=True),
        _info(Op.CompositeExtract, (_K.ID, _K.LITERAL_REST), result=True, typed=True),
        _info(
            Op.CompositeInsert, (_K.ID, _K.ID, _K.LITERAL_REST), result=True, typed=True
        ),
        # Conversions.
        _info(Op.ConvertSToF, (_K.ID,), result=True, typed=True),
        _info(Op.ConvertFToS, (_K.ID,), result=True, typed=True),
        # Control flow.
        _info(Op.Phi, (_K.PHI_REST,), result=True, typed=True),
        _info(Op.Branch, (_K.ID,), result=False, typed=False, terminator=True),
        _info(
            Op.BranchConditional,
            (_K.ID, _K.ID, _K.ID),
            result=False,
            typed=False,
            terminator=True,
        ),
        _info(Op.Return, (), result=False, typed=False, terminator=True),
        _info(Op.ReturnValue, (_K.ID,), result=False, typed=False, terminator=True),
        _info(Op.Kill, (), result=False, typed=False, terminator=True),
        _info(Op.Unreachable, (), result=False, typed=False, terminator=True),
        _info(Op.FunctionCall, (_K.ID, _K.ID_REST), result=True, typed=True),
        # Structure.
        _info(Op.Function, (_K.LITERAL, _K.ID), result=True, typed=True),
        _info(Op.FunctionParameter, (), result=True, typed=True),
        _info(Op.Label, (), result=True, typed=False),
        _info(Op.FunctionEnd, (), result=False, typed=False),
        _info(Op.EntryPoint, (_K.LITERAL, _K.ID), result=False, typed=False),
        _info(Op.Name, (_K.ID, _K.LITERAL), result=False, typed=False),
    ]
)


OP_BY_NAME: dict[str, Op] = {op.value: op for op in Op}

#: Function-control literal values accepted on OpFunction, after SPIR-V.
FUNCTION_CONTROL_NONE = "None"
FUNCTION_CONTROL_INLINE = "Inline"
FUNCTION_CONTROL_DONT_INLINE = "DontInline"
FUNCTION_CONTROLS = (
    FUNCTION_CONTROL_NONE,
    FUNCTION_CONTROL_INLINE,
    FUNCTION_CONTROL_DONT_INLINE,
)

#: Commutative binary opcodes (used by operand-swapping transformations).
COMMUTATIVE_OPS = frozenset(
    {
        Op.IAdd,
        Op.IMul,
        Op.FAdd,
        Op.FMul,
        Op.LogicalAnd,
        Op.LogicalOr,
        Op.IEqual,
        Op.INotEqual,
        Op.FOrdEqual,
        Op.FOrdNotEqual,
    }
)

#: Opcodes whose results depend only on their operands (no memory, no control),
#: safe to move subject to availability of operands.
PURE_OPS = frozenset(
    {
        Op.IAdd,
        Op.ISub,
        Op.IMul,
        Op.SNegate,
        Op.FAdd,
        Op.FSub,
        Op.FMul,
        Op.FNegate,
        Op.LogicalAnd,
        Op.LogicalOr,
        Op.LogicalNot,
        Op.IEqual,
        Op.INotEqual,
        Op.SLessThan,
        Op.SLessThanEqual,
        Op.SGreaterThan,
        Op.SGreaterThanEqual,
        Op.FOrdEqual,
        Op.FOrdNotEqual,
        Op.FOrdLessThan,
        Op.FOrdLessThanEqual,
        Op.FOrdGreaterThan,
        Op.FOrdGreaterThanEqual,
        Op.Select,
        Op.CompositeConstruct,
        Op.CompositeExtract,
        Op.CompositeInsert,
        Op.ConvertSToF,
        Op.ConvertFToS,
        Op.CopyObject,
    }
)

#: Pure opcodes that can fault at runtime (division by zero) and therefore must
#: not be speculated or hoisted past control flow.
TRAPPING_OPS = frozenset({Op.SDiv, Op.SRem})


def op_info(op: Op) -> OpInfo:
    """Return the :class:`OpInfo` for *op*."""
    return OP_INFO[op]
