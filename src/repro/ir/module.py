"""Core IR data structures: instructions, blocks, functions, modules.

The design follows SPIR-V's shape: a module is a list of global instructions
(types, constants, module-scope variables) followed by function definitions,
each of which is a list of basic blocks in an order that must respect
dominance.  Every value-producing instruction has a unique *result id*; the
module tracks an *id bound* from which fresh ids are allocated.

Mutability: instructions, blocks, functions and modules are mutable on purpose
— transformations edit modules in place — but :meth:`Module.clone` provides a
cheap deep copy so that callers can transform copies while keeping originals
pristine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.ir.opcodes import OP_INFO, Op, OperandKind, op_info
from repro.ir import types as tys

Operand = int | float | bool | str


class IrError(Exception):
    """Raised on structurally invalid IR constructions or lookups."""


@dataclass
class Instruction:
    """A single IR instruction.

    ``operands`` stores ids and literals flattened, in signature order; for
    ``OpPhi`` the operands are ``[value_id, pred_block_id, ...]`` pairs.
    """

    opcode: Op
    result_id: int | None = None
    type_id: int | None = None
    operands: list[Operand] = field(default_factory=list)

    def __post_init__(self) -> None:
        info = OP_INFO[self.opcode]
        if info.has_result and self.result_id is None:
            raise IrError(f"{self.opcode} requires a result id")
        if not info.has_result and self.result_id is not None:
            raise IrError(f"{self.opcode} must not have a result id")
        if info.has_type and self.type_id is None:
            raise IrError(f"{self.opcode} requires a result type id")
        if not info.has_type and self.type_id is not None:
            raise IrError(f"{self.opcode} must not have a result type id")

    # -- operand introspection -------------------------------------------------

    def operand_slots(self) -> list[tuple[OperandKind, Operand]]:
        """Pair each operand with its :class:`OperandKind` from the signature."""
        info = op_info(self.opcode)
        slots: list[tuple[OperandKind, Operand]] = []
        kinds = info.operands
        i = 0
        for kind in kinds:
            if kind in (OperandKind.ID, OperandKind.LITERAL):
                if i >= len(self.operands):
                    raise IrError(f"{self.opcode}: missing operand {i}")
                slots.append((kind, self.operands[i]))
                i += 1
            elif kind is OperandKind.OPTIONAL_ID:
                if i < len(self.operands):
                    slots.append((OperandKind.ID, self.operands[i]))
                    i += 1
            elif kind is OperandKind.ID_REST:
                for operand in self.operands[i:]:
                    slots.append((OperandKind.ID, operand))
                i = len(self.operands)
            elif kind is OperandKind.LITERAL_REST:
                for operand in self.operands[i:]:
                    slots.append((OperandKind.LITERAL, operand))
                i = len(self.operands)
            elif kind is OperandKind.PHI_REST:
                rest = self.operands[i:]
                if len(rest) % 2 != 0:
                    raise IrError("OpPhi operands must come in pairs")
                for operand in rest:
                    slots.append((OperandKind.ID, operand))
                i = len(self.operands)
        if i != len(self.operands):
            raise IrError(f"{self.opcode}: too many operands")
        return slots

    def used_ids(self) -> list[int]:
        """All ids referenced by this instruction's operands and type."""
        ids = [
            operand
            for kind, operand in self.operand_slots()
            if kind is OperandKind.ID
        ]
        if self.type_id is not None:
            ids.append(self.type_id)
        return [int(i) for i in ids]

    def remap_ids(self, mapping: dict[int, int]) -> None:
        """Rewrite ids (operands, type, and result) through *mapping* in place.

        Ids absent from *mapping* are left unchanged.
        """
        info = op_info(self.opcode)
        new_operands: list[Operand] = []
        i = 0
        for kind in info.operands:
            if kind is OperandKind.ID:
                new_operands.append(mapping.get(int(self.operands[i]), self.operands[i]))
                i += 1
            elif kind is OperandKind.LITERAL:
                new_operands.append(self.operands[i])
                i += 1
            elif kind in (OperandKind.ID_REST, OperandKind.PHI_REST, OperandKind.OPTIONAL_ID):
                for operand in self.operands[i:]:
                    new_operands.append(mapping.get(int(operand), operand))
                i = len(self.operands)
            elif kind is OperandKind.LITERAL_REST:
                new_operands.extend(self.operands[i:])
                i = len(self.operands)
        self.operands = new_operands
        if self.type_id is not None:
            self.type_id = mapping.get(self.type_id, self.type_id)
        if self.result_id is not None:
            self.result_id = mapping.get(self.result_id, self.result_id)

    def replace_uses(self, old_id: int, new_id: int) -> bool:
        """Replace operand (not result/type) uses of *old_id* with *new_id*.

        Returns True when at least one use was replaced.  For ``OpPhi`` both
        value and predecessor operands are considered uses; callers replacing
        only value operands should edit ``operands`` directly.
        """
        info = op_info(self.opcode)
        changed = False
        i = 0
        for kind in info.operands:
            if kind is OperandKind.ID:
                if int(self.operands[i]) == old_id:
                    self.operands[i] = new_id
                    changed = True
                i += 1
            elif kind is OperandKind.LITERAL:
                i += 1
            elif kind in (OperandKind.ID_REST, OperandKind.PHI_REST, OperandKind.OPTIONAL_ID):
                for j in range(i, len(self.operands)):
                    if int(self.operands[j]) == old_id:
                        self.operands[j] = new_id
                        changed = True
                i = len(self.operands)
            elif kind is OperandKind.LITERAL_REST:
                i = len(self.operands)
        return changed

    def phi_pairs(self) -> list[tuple[int, int]]:
        """Return (value id, predecessor block id) pairs of an ``OpPhi``."""
        if self.opcode is not Op.Phi:
            raise IrError("phi_pairs on non-phi instruction")
        ops = self.operands
        return [(int(ops[i]), int(ops[i + 1])) for i in range(0, len(ops), 2)]

    def clone(self) -> "Instruction":
        # Cloning a validated instruction cannot produce an invalid one, so
        # skip ``__init__``/``__post_init__`` — this is the hottest
        # allocation site in the probe path (every probe clones the module).
        new = object.__new__(Instruction)
        new.opcode = self.opcode
        new.result_id = self.result_id
        new.type_id = self.type_id
        new.operands = list(self.operands)
        return new

    def key(self) -> tuple:
        """Structural identity key (used for equality in tests)."""
        return (self.opcode, self.result_id, self.type_id, tuple(self.operands))

    def __str__(self) -> str:  # pragma: no cover - cosmetic; printer is canonical
        from repro.ir.printer import format_instruction

        return format_instruction(self)


@dataclass
class Block:
    """A basic block: a label id, body instructions, and one terminator."""

    label_id: int
    instructions: list[Instruction] = field(default_factory=list)
    terminator: Instruction | None = None

    def successors(self) -> list[int]:
        """Label ids of successor blocks, in terminator operand order."""
        term = self.terminator
        if term is None:
            return []
        if term.opcode is Op.Branch:
            return [int(term.operands[0])]
        if term.opcode is Op.BranchConditional:
            return [int(term.operands[1]), int(term.operands[2])]
        return []

    def phis(self) -> list[Instruction]:
        return [inst for inst in self.instructions if inst.opcode is Op.Phi]

    def non_phi_instructions(self) -> list[Instruction]:
        return [inst for inst in self.instructions if inst.opcode is not Op.Phi]

    def all_instructions(self) -> Iterator[Instruction]:
        """Body instructions followed by the terminator (if set)."""
        yield from self.instructions
        if self.terminator is not None:
            yield self.terminator

    def clone(self) -> "Block":
        new = object.__new__(Block)
        new.label_id = self.label_id
        new.instructions = [inst.clone() for inst in self.instructions]
        new.terminator = self.terminator.clone() if self.terminator else None
        return new


@dataclass
class Function:
    """A function: its ``OpFunction`` instruction, parameters, and blocks."""

    inst: Instruction
    params: list[Instruction] = field(default_factory=list)
    blocks: list[Block] = field(default_factory=list)

    @property
    def result_id(self) -> int:
        assert self.inst.result_id is not None
        return self.inst.result_id

    @property
    def control(self) -> str:
        return str(self.inst.operands[0])

    @control.setter
    def control(self, value: str) -> None:
        self.inst.operands[0] = value

    @property
    def function_type_id(self) -> int:
        return int(self.inst.operands[1])

    @property
    def return_type_id(self) -> int:
        assert self.inst.type_id is not None
        return self.inst.type_id

    def entry_block(self) -> Block:
        if not self.blocks:
            raise IrError(f"function %{self.result_id} has no blocks")
        return self.blocks[0]

    def block(self, label_id: int) -> Block:
        for block in self.blocks:
            if block.label_id == label_id:
                return block
        raise IrError(f"no block %{label_id} in function %{self.result_id}")

    def has_block(self, label_id: int) -> bool:
        return any(block.label_id == label_id for block in self.blocks)

    def block_index(self, label_id: int) -> int:
        for i, block in enumerate(self.blocks):
            if block.label_id == label_id:
                return i
        raise IrError(f"no block %{label_id} in function %{self.result_id}")

    def all_instructions(self) -> Iterator[Instruction]:
        yield self.inst
        yield from self.params
        for block in self.blocks:
            yield Instruction(Op.Label, block.label_id)
            yield from block.all_instructions()

    def predecessors(self, label_id: int) -> list[int]:
        """Label ids of blocks that branch to *label_id*, in block order."""
        return [b.label_id for b in self.blocks if label_id in b.successors()]

    def clone(self) -> "Function":
        new = object.__new__(Function)
        new.inst = self.inst.clone()
        new.params = [p.clone() for p in self.params]
        new.blocks = [b.clone() for b in self.blocks]
        return new


@dataclass
class Module:
    """A whole IR module.

    ``global_insts`` holds types, constants and module-scope variables, in
    declaration order (a declaration may only reference earlier declarations).
    ``names`` maps ids to debug names; uniform/input/output variables are bound
    to interpreter inputs and outputs by name.
    """

    id_bound: int = 1
    global_insts: list[Instruction] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    entry_point_id: int | None = None
    entry_point_name: str = "main"
    names: dict[int, str] = field(default_factory=dict)
    #: Mutation counter guarding the fingerprint/digest caches below.  Code
    #: that edits the module structurally outside the helpers that already
    #: call :meth:`touch` (``add_global``, ``map_instructions``, the
    #: transformation machinery via ``Context.invalidate``, pass pipelines)
    #: must call :meth:`touch` before the next ``fingerprint`` /
    #: ``content_digest`` read.
    _version: int = field(default=0, repr=False, compare=False)
    _fingerprint_cache: "tuple[int, tuple] | None" = field(
        default=None, repr=False, compare=False
    )
    _digest_cache: "tuple[int, str] | None" = field(
        default=None, repr=False, compare=False
    )

    # -- id management ---------------------------------------------------------

    def fresh_id(self) -> int:
        """Allocate and return a new unused id."""
        new_id = self.id_bound
        self.id_bound += 1
        return new_id

    def fresh_ids(self, count: int) -> list[int]:
        return [self.fresh_id() for _ in range(count)]

    def claim_id(self, wanted: int) -> int:
        """Mark externally chosen id *wanted* as used, growing the bound.

        Transformations record their fresh ids explicitly (a design principle
        from the paper); on application they claim those ids.  Raises
        :class:`IrError` if the id already names something.
        """
        if not self.is_fresh(wanted):
            raise IrError(f"id %{wanted} is not fresh")
        self.id_bound = max(self.id_bound, wanted + 1)
        return wanted

    def is_fresh(self, candidate: int) -> bool:
        """True when *candidate* is positive and defined nowhere in the module."""
        if candidate < 1:
            return False
        return candidate not in self.def_map()

    # -- traversal ---------------------------------------------------------------

    def all_instructions(self) -> Iterator[Instruction]:
        yield from self.global_insts
        for function in self.functions:
            yield from function.all_instructions()

    def instruction_count(self) -> int:
        """Total instruction count (labels and terminators included).

        This is the size metric used for reduction quality (RQ2).
        """
        return sum(1 for _ in self.all_instructions())

    def def_map(self) -> dict[int, Instruction]:
        """Map every defined result id to its defining instruction.

        Block labels map to synthetic ``OpLabel`` instructions.
        """
        defs: dict[int, Instruction] = {}
        for inst in self.all_instructions():
            if inst.result_id is not None:
                if inst.result_id in defs:
                    raise IrError(f"duplicate definition of %{inst.result_id}")
                defs[inst.result_id] = inst
        return defs

    def get_instruction(self, result_id: int) -> Instruction:
        inst = self.def_map().get(result_id)
        if inst is None:
            raise IrError(f"no definition for %{result_id}")
        return inst

    def has_id(self, result_id: int) -> bool:
        return result_id in self.def_map()

    def get_function(self, function_id: int) -> Function:
        for function in self.functions:
            if function.result_id == function_id:
                return function
        raise IrError(f"no function %{function_id}")

    def has_function(self, function_id: int) -> bool:
        return any(f.result_id == function_id for f in self.functions)

    def entry_function(self) -> Function:
        if self.entry_point_id is None:
            raise IrError("module has no entry point")
        return self.get_function(self.entry_point_id)

    def containing_function(self, result_id: int) -> Function | None:
        """The function whose body (params/labels/instructions) defines *result_id*."""
        for function in self.functions:
            for inst in function.all_instructions():
                if inst.result_id == result_id:
                    return function
        return None

    def containing_block(self, result_id: int) -> tuple[Function, Block] | None:
        """Locate the block whose body or terminator defines *result_id*."""
        for function in self.functions:
            for block in function.blocks:
                for inst in block.instructions:
                    if inst.result_id == result_id:
                        return function, block
        return None

    # -- types and constants -------------------------------------------------------

    def type_table(self) -> dict[int, tys.Type]:
        """Materialise structural types for every ``OpType*`` declaration."""
        table: dict[int, tys.Type] = {}
        for inst in self.global_insts:
            op = inst.opcode
            rid = inst.result_id
            if op is Op.TypeVoid:
                table[rid] = tys.VoidType()
            elif op is Op.TypeBool:
                table[rid] = tys.BoolType()
            elif op is Op.TypeInt:
                table[rid] = tys.IntType(int(inst.operands[0]), bool(inst.operands[1]))
            elif op is Op.TypeFloat:
                table[rid] = tys.FloatType(int(inst.operands[0]))
            elif op is Op.TypeVector:
                table[rid] = tys.VectorType(
                    table[int(inst.operands[0])], int(inst.operands[1])
                )
            elif op is Op.TypeArray:
                table[rid] = tys.ArrayType(
                    table[int(inst.operands[0])], int(inst.operands[1])
                )
            elif op is Op.TypeStruct:
                table[rid] = tys.StructType(
                    tuple(table[int(m)] for m in inst.operands)
                )
            elif op is Op.TypePointer:
                table[rid] = tys.PointerType(
                    tys.STORAGE_BY_NAME[str(inst.operands[0])],
                    table[int(inst.operands[1])],
                )
            elif op is Op.TypeFunction:
                table[rid] = tys.FunctionType(
                    table[int(inst.operands[0])],
                    tuple(table[int(p)] for p in inst.operands[1:]),
                )
        return table

    def type_of(self, value_id: int) -> tys.Type:
        """Structural type of the value produced by *value_id*."""
        inst = self.get_instruction(value_id)
        table = self.type_table()
        if inst.opcode is Op.Label:
            raise IrError(f"%{value_id} is a label, not a value")
        if inst.type_id is None:
            if inst.result_id in table:
                raise IrError(f"%{value_id} is a type, not a value")
            raise IrError(f"%{value_id} has no type")
        return table[inst.type_id]

    def find_type_id(self, wanted: tys.Type) -> int | None:
        """Result id of the declaration of structural type *wanted*, if any."""
        for rid, ty in self.type_table().items():
            if ty == wanted:
                return rid
        return None

    def find_constant_id(self, type_id: int, value: Operand) -> int | None:
        """Id of a scalar constant of *type_id* with literal *value*, if any."""
        for inst in self.global_insts:
            if inst.type_id != type_id:
                continue
            if inst.opcode is Op.Constant and inst.operands[0] == value:
                return inst.result_id
            if inst.opcode is Op.ConstantTrue and value is True:
                return inst.result_id
            if inst.opcode is Op.ConstantFalse and value is False:
                return inst.result_id
        return None

    def constant_value(self, const_id: int) -> object:
        """Evaluate a constant instruction to a Python value.

        Composites evaluate to lists.  Raises :class:`IrError` for non-constant
        ids (including ``OpUndef``, whose value is unspecified).
        """
        inst = self.get_instruction(const_id)
        if inst.opcode is Op.ConstantTrue:
            return True
        if inst.opcode is Op.ConstantFalse:
            return False
        if inst.opcode is Op.Constant:
            return inst.operands[0]
        if inst.opcode is Op.ConstantComposite:
            return [self.constant_value(int(m)) for m in inst.operands]
        raise IrError(f"%{const_id} is not a constant with a known value")

    def is_constant(self, result_id: int) -> bool:
        try:
            inst = self.get_instruction(result_id)
        except IrError:
            return False
        return op_info(inst.opcode).is_constant_decl and inst.opcode is not Op.Undef

    # -- global section editing ------------------------------------------------

    def add_global(self, inst: Instruction) -> int:
        """Append a global declaration, returning its result id."""
        self.global_insts.append(inst)
        assert inst.result_id is not None
        self.id_bound = max(self.id_bound, inst.result_id + 1)
        self.touch()
        return inst.result_id

    def global_variables(self) -> list[Instruction]:
        return [i for i in self.global_insts if i.opcode is Op.Variable]

    def name_of(self, result_id: int) -> str | None:
        return self.names.get(result_id)

    def id_named(self, name: str) -> int | None:
        for rid, n in self.names.items():
            if n == name:
                return rid
        return None

    # -- copying and comparison --------------------------------------------------

    def clone(self) -> "Module":
        new = object.__new__(Module)
        new.id_bound = self.id_bound
        new.global_insts = [inst.clone() for inst in self.global_insts]
        new.functions = [f.clone() for f in self.functions]
        new.entry_point_id = self.entry_point_id
        new.entry_point_name = self.entry_point_name
        new.names = dict(self.names)
        # The clone is content-identical, so valid fingerprint/digest caches
        # carry over (rebased to the clone's fresh version counter).
        new._version = 0
        fingerprint = self._fingerprint_cache
        new._fingerprint_cache = (
            (0, fingerprint[1])
            if fingerprint is not None and fingerprint[0] == self._version
            else None
        )
        digest = self._digest_cache
        new._digest_cache = (
            (0, digest[1])
            if digest is not None and digest[0] == self._version
            else None
        )
        return new

    def touch(self) -> None:
        """Mark the module as mutated, invalidating cached fingerprints."""
        self._version += 1

    def fingerprint(self) -> tuple:
        """Structural identity of the module (ignores ``id_bound`` slack).

        Cached per :attr:`_version`: repeated calls on an unmutated module
        return the same tuple object without rebuilding it.
        """
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        fingerprint = (
            tuple(inst.key() for inst in self.global_insts),
            tuple(
                (
                    f.inst.key(),
                    tuple(p.key() for p in f.params),
                    tuple(
                        (
                            b.label_id,
                            tuple(i.key() for i in b.instructions),
                            b.terminator.key() if b.terminator else None,
                        )
                        for b in f.blocks
                    ),
                )
                for f in self.functions
            ),
            self.entry_point_id,
            tuple(sorted(self.names.items())),
        )
        self._fingerprint_cache = (self._version, fingerprint)
        return fingerprint

    def content_digest(self) -> str:
        """A compact, stable content hash of :meth:`fingerprint`.

        The digest keys the compile/probe caches (:mod:`repro.perf.
        probe_cache`): equal digests mean structurally identical modules.
        Cached per :attr:`_version` alongside the fingerprint.
        """
        cached = self._digest_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        import pickle
        from hashlib import blake2b

        # Pickle rather than repr: ~4x faster to serialize, and still sound
        # as a cache key — equal bytes decode to equal fingerprints, so a
        # digest collision implies structural equality.  (Pickle memoization
        # can make *equal* fingerprints serialize differently when their
        # object sharing differs; that only costs a cache miss, never a
        # wrong hit.)
        digest = blake2b(
            pickle.dumps(self.fingerprint(), protocol=5), digest_size=16
        ).hexdigest()
        self._digest_cache = (self._version, digest)
        return digest

    def map_instructions(self, fn: Callable[[Instruction], None]) -> None:
        """Apply *fn* to every instruction in the module, for bulk edits."""
        for inst in self.all_instructions():
            fn(inst)
        self.touch()
