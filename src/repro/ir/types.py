"""Structural type objects for the miniature SPIR-V-like IR.

Types are declared in a module as ``OpType*`` instructions; this module
provides immutable Python-level *views* of those declarations so the rest of
the system (interpreter, validator, transformations) can reason about types
structurally.  :func:`repro.ir.module.Module.type_table` materialises the
mapping from result id to :class:`Type`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class StorageClass(enum.Enum):
    """Where a pointer's pointee lives, after SPIR-V storage classes."""

    FUNCTION = "Function"
    PRIVATE = "Private"
    UNIFORM = "Uniform"
    INPUT = "Input"
    OUTPUT = "Output"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


STORAGE_BY_NAME = {sc.value: sc for sc in StorageClass}


@dataclass(frozen=True)
class Type:
    """Base class for all structural types."""

    def is_scalar(self) -> bool:
        return isinstance(self, (BoolType, IntType, FloatType))

    def is_numeric(self) -> bool:
        return isinstance(self, (IntType, FloatType))

    def is_composite(self) -> bool:
        return isinstance(self, (VectorType, ArrayType, StructType))


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class BoolType(Type):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class IntType(Type):
    width: int = 32
    signed: bool = True

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.width}"


@dataclass(frozen=True)
class FloatType(Type):
    width: int = 32

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclass(frozen=True)
class VectorType(Type):
    element: Type
    count: int

    def __post_init__(self) -> None:
        if not self.element.is_scalar():
            raise ValueError("vector element must be scalar")
        if not 2 <= self.count <= 4:
            raise ValueError("vector count must be in 2..4")

    def __str__(self) -> str:
        return f"vec{self.count}<{self.element}>"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("array length must be positive")

    def __str__(self) -> str:
        return f"[{self.length} x {self.element}]"


@dataclass(frozen=True)
class StructType(Type):
    members: tuple[Type, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(m) for m in self.members) + "}"


@dataclass(frozen=True)
class PointerType(Type):
    storage: StorageClass
    pointee: Type

    def __str__(self) -> str:
        return f"ptr<{self.storage}, {self.pointee}>"


@dataclass(frozen=True)
class FunctionType(Type):
    return_type: Type
    params: tuple[Type, ...]

    def __str__(self) -> str:
        return f"fn({', '.join(str(p) for p in self.params)}) -> {self.return_type}"


def composite_member_count(ty: Type) -> int:
    """Number of directly indexable members of a composite type."""
    if isinstance(ty, VectorType):
        return ty.count
    if isinstance(ty, ArrayType):
        return ty.length
    if isinstance(ty, StructType):
        return len(ty.members)
    raise TypeError(f"not a composite type: {ty}")


def composite_member_type(ty: Type, index: int) -> Type:
    """Type of member *index* of composite type *ty*.

    Raises :class:`IndexError` when the index is out of bounds, and
    :class:`TypeError` when *ty* is not a composite.
    """
    count = composite_member_count(ty)
    if not 0 <= index < count:
        raise IndexError(f"index {index} out of bounds for {ty}")
    if isinstance(ty, VectorType):
        return ty.element
    if isinstance(ty, ArrayType):
        return ty.element
    assert isinstance(ty, StructType)
    return ty.members[index]


def walk_composite(ty: Type, indices: tuple[int, ...]) -> Type:
    """Resolve a (possibly empty) literal index path through composite *ty*."""
    current = ty
    for index in indices:
        current = composite_member_type(current, index)
    return current
