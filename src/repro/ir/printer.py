"""Textual disassembler for IR modules.

The format mirrors SPIR-V assembly: one instruction per line,
``%id = OpName %type operands`` for value-producing instructions.  The output
round-trips through :mod:`repro.ir.parser`.
"""

from __future__ import annotations

from repro.ir.module import Block, Function, Instruction, Module, Operand
from repro.ir.opcodes import Op


def format_literal(value: Operand) -> str:
    """Render a literal operand."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    bare_safe = (
        text != ""
        and (text[0].isalpha() or text[0] == "_")
        and all(c.isalnum() or c in "_." for c in text)
        and text not in ("true", "false")
    )
    if bare_safe:
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def format_instruction(inst: Instruction) -> str:
    """Render one instruction (without indentation)."""
    from repro.ir.opcodes import OperandKind

    parts: list[str] = [inst.opcode.value]
    if inst.type_id is not None:
        parts.append(f"%{inst.type_id}")
    for kind, operand in inst.operand_slots():
        if kind is OperandKind.ID:
            parts.append(f"%{int(operand)}")
        else:
            parts.append(format_literal(operand))
    body = " ".join(parts)
    if inst.result_id is not None:
        return f"%{inst.result_id} = {body}"
    return body


def _emit_block(lines: list[str], block: Block) -> None:
    lines.append(f"%{block.label_id} = OpLabel")
    for inst in block.instructions:
        lines.append("  " + format_instruction(inst))
    if block.terminator is not None:
        lines.append("  " + format_instruction(block.terminator))


def _emit_function(lines: list[str], function: Function) -> None:
    lines.append(format_instruction(function.inst))
    for param in function.params:
        lines.append(format_instruction(param))
    for block in function.blocks:
        _emit_block(lines, block)
    lines.append("OpFunctionEnd")


def disassemble(module: Module) -> str:
    """Render *module* as assembly text."""
    lines: list[str] = []
    if module.entry_point_id is not None:
        lines.append(
            f"OpEntryPoint {format_literal(module.entry_point_name)} "
            f"%{module.entry_point_id}"
        )
    for rid in sorted(module.names):
        lines.append(f"OpName %{rid} {format_literal(module.names[rid])}")
    for inst in module.global_insts:
        lines.append(format_instruction(inst))
    for function in module.functions:
        _emit_function(lines, function)
    return "\n".join(lines) + "\n"


def diff_lines(before: Module, after: Module) -> list[str]:
    """Unified-style diff between two modules' disassembly.

    Used to present the "delta between original and reduced variant" that the
    paper proposes as the bug-report artefact (Figure 3).
    """
    import difflib

    a = disassemble(before).splitlines()
    b = disassemble(after).splitlines()
    return list(
        difflib.unified_diff(a, b, fromfile="original", tofile="variant", lineterm="")
    )


def instruction_delta(before: Module, after: Module) -> int:
    """Absolute difference in instruction counts (the RQ2 size metric)."""
    return abs(after.instruction_count() - before.instruction_count())
