"""Static analyses over the IR (CFG, dominators, def-use, availability)."""

from repro.ir.analysis.cfg import Availability, Cfg, DefUse, defined_before_in_block

__all__ = ["Availability", "Cfg", "DefUse", "defined_before_in_block"]
