"""Control-flow-graph analyses: reachability, dominators, availability.

SPIR-V's structural rules that the paper's transformations interact with are
expressed in terms of dominance: a block must appear before the blocks it
dominates, and an instruction may only use a result id that is *available* —
defined earlier in the same block or in a strictly dominating block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.module import Block, Function, Instruction, Module


@dataclass
class Cfg:
    """Control-flow graph of one function, with a dominator tree.

    Only reachable blocks participate in dominance; unreachable blocks
    dominate nothing and are dominated by nothing (matching how the validator
    treats them).
    """

    function: Function
    successors: dict[int, list[int]] = field(default_factory=dict)
    predecessors: dict[int, list[int]] = field(default_factory=dict)
    reachable: set[int] = field(default_factory=set)
    idom: dict[int, int | None] = field(default_factory=dict)
    rpo: list[int] = field(default_factory=list)
    _rpo_index: dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(cls, function: Function) -> "Cfg":
        cfg = cls(function)
        for block in function.blocks:
            cfg.successors[block.label_id] = block.successors()
            cfg.predecessors.setdefault(block.label_id, [])
        for label, succs in cfg.successors.items():
            for succ in succs:
                cfg.predecessors.setdefault(succ, []).append(label)
        if function.blocks:
            cfg._compute_reachability()
            cfg._compute_dominators()
        return cfg

    @property
    def entry(self) -> int:
        return self.function.entry_block().label_id

    def _compute_reachability(self) -> None:
        worklist = [self.entry]
        seen = {self.entry}
        while worklist:
            label = worklist.pop()
            for succ in self.successors.get(label, []):
                if succ not in seen:
                    seen.add(succ)
                    worklist.append(succ)
        self.reachable = seen

    def _reverse_postorder(self) -> list[int]:
        order: list[int] = []
        visited: set[int] = set()

        def visit(label: int) -> None:
            # Iterative DFS to keep recursion depth bounded.  Successors are
            # visited in *reverse* terminator order, which makes the RPO of a
            # structured program match its natural then-before-else,
            # header-body-exit layout — the canonical order the block-layout
            # pass normalises to.
            stack: list[tuple[int, int]] = [(label, 0)]
            visited.add(label)
            while stack:
                current, child_index = stack.pop()
                succs = list(reversed(self.successors.get(current, [])))
                if child_index < len(succs):
                    stack.append((current, child_index + 1))
                    succ = succs[child_index]
                    if succ not in visited:
                        visited.add(succ)
                        stack.append((succ, 0))
                else:
                    order.append(current)

        visit(self.entry)
        order.reverse()
        return order

    def _compute_dominators(self) -> None:
        """Cooper–Harvey–Kennedy iterative dominator computation."""
        rpo = self._reverse_postorder()
        self.rpo = rpo
        self._rpo_index = {label: i for i, label in enumerate(rpo)}
        idom: dict[int, int | None] = {label: None for label in rpo}
        idom[self.entry] = self.entry

        def intersect(a: int, b: int) -> int:
            while a != b:
                while self._rpo_index[a] > self._rpo_index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while self._rpo_index[b] > self._rpo_index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.entry:
                    continue
                preds = [
                    p
                    for p in self.predecessors.get(label, [])
                    if p in self.reachable and idom.get(p) is not None
                ]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = intersect(new_idom, pred)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True

        idom[self.entry] = None  # the entry has no immediate dominator
        self.idom = idom

    # -- queries -----------------------------------------------------------------

    def dominates(self, a: int, b: int) -> bool:
        """True when block *a* dominates block *b* (reflexive)."""
        if a not in self.reachable or b not in self.reachable:
            return False
        current: int | None = b
        while current is not None:
            if current == a:
                return True
            current = self.idom.get(current)
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def dominance_respecting_order(self) -> bool:
        """Check SPIR-V's block-order rule: every block appears after all
        blocks that strictly dominate it (entry first)."""
        position = {b.label_id: i for i, b in enumerate(self.function.blocks)}
        for block in self.function.blocks:
            label = block.label_id
            if label not in self.reachable:
                continue
            dom = self.idom.get(label)
            if dom is not None and position[dom] > position[label]:
                return False
        return True

    def dominance_frontiers(self) -> dict[int, set[int]]:
        """Dominance frontier of every reachable block (Cytron et al.)."""
        frontiers: dict[int, set[int]] = {label: set() for label in self.reachable}
        for label in self.reachable:
            preds = [p for p in self.predecessors.get(label, []) if p in self.reachable]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: int | None = pred
                while runner is not None and runner != self.idom.get(label):
                    frontiers[runner].add(label)
                    runner = self.idom.get(runner)
        return frontiers

    def back_edges(self) -> list[tuple[int, int]]:
        """Edges (tail, head) where head dominates tail — natural loop latches."""
        edges = []
        for tail in self.reachable:
            for head in self.successors.get(tail, []):
                if head in self.reachable and self.dominates(head, tail):
                    edges.append((tail, head))
        return edges

    def dead_end_blocks(self) -> list[int]:
        """Blocks whose terminator leaves the function (return/kill/unreachable)."""
        return [
            b.label_id
            for b in self.function.blocks
            if b.terminator is not None and not b.successors()
        ]


@dataclass
class DefUse:
    """Module-wide def/use information."""

    module: Module
    uses: dict[int, list[Instruction]] = field(default_factory=dict)

    @classmethod
    def build(cls, module: Module) -> "DefUse":
        info = cls(module)
        for inst in module.all_instructions():
            for used in inst.used_ids():
                info.uses.setdefault(used, []).append(inst)
        return info

    def users_of(self, result_id: int) -> list[Instruction]:
        return list(self.uses.get(result_id, []))

    def is_used(self, result_id: int) -> bool:
        return bool(self.uses.get(result_id))


def defined_before_in_block(block: Block, def_id: int, use_inst: Instruction) -> bool:
    """True when *def_id* is defined in *block* strictly before *use_inst*.

    The block label itself counts as defined at the top.  *use_inst* may be the
    block's terminator.
    """
    if def_id == block.label_id:
        return True
    for inst in block.instructions:
        if inst is use_inst:
            return False
        if inst.result_id == def_id:
            return True
    return False


class Availability:
    """Answers "is id X available at instruction Y?" for one function.

    Global declarations and function parameters are available everywhere;
    a local definition is available at uses it strictly precedes in its own
    block, and everywhere in blocks its block strictly dominates.
    """

    def __init__(self, module: Module, function: Function) -> None:
        self.module = module
        self.function = function
        self.cfg = Cfg.build(function)
        self._global_ids = {
            inst.result_id
            for inst in module.global_insts
            if inst.result_id is not None
        }
        self._global_ids.update(f.result_id for f in module.functions)
        self._param_ids = {p.result_id for p in function.params}
        self._def_block: dict[int, int] = {}
        for block in function.blocks:
            self._def_block[block.label_id] = block.label_id
            for inst in block.instructions:
                if inst.result_id is not None:
                    self._def_block[inst.result_id] = block.label_id

    def available_at(self, def_id: int, block_label: int, use_inst: Instruction | None) -> bool:
        """Is *def_id* usable by *use_inst* residing in block *block_label*?

        Pass ``use_inst=None`` to ask about the end of the block (terminator
        position).
        """
        if def_id in self._global_ids or def_id in self._param_ids:
            return True
        def_block = self._def_block.get(def_id)
        if def_block is None:
            return False
        if def_block == block_label:
            if use_inst is None:
                return True
            block = self.function.block(block_label)
            return defined_before_in_block(block, def_id, use_inst)
        return self.cfg.strictly_dominates(def_block, block_label)

    def ids_available_at(self, block_label: int, use_inst: Instruction | None) -> list[int]:
        """All value ids available at the given position (excluding labels)."""
        result: list[int] = []
        for inst in self.module.global_insts:
            if inst.result_id is not None:
                result.append(inst.result_id)
        result.extend(p.result_id for p in self.function.params if p.result_id)
        for block in self.function.blocks:
            for inst in block.instructions:
                if inst.result_id is None:
                    continue
                if self.available_at(inst.result_id, block_label, use_inst):
                    result.append(inst.result_id)
        return result
