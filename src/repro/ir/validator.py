"""Module validator (the project's ``spirv-val`` analogue).

Checks the structural rules of the IR that the paper's transformations must
preserve: SSA (unique defs, uses available under dominance), block ordering
(entry first, dominator before dominated), phi shape, and type correctness.

:func:`validate` returns a list of human-readable errors; :func:`check`
raises :class:`ValidationError` when any are found.
"""

from __future__ import annotations

from repro.ir import types as tys
from repro.ir.analysis.cfg import Availability, Cfg
from repro.ir.module import Function, Instruction, IrError, Module
from repro.ir.opcodes import FUNCTION_CONTROLS, Op, op_info


class ValidationError(Exception):
    """Raised by :func:`check` when a module is invalid."""

    def __init__(self, errors: list[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = errors


_INT_BINOPS = {Op.IAdd, Op.ISub, Op.IMul, Op.SDiv, Op.SRem}
_FLOAT_BINOPS = {Op.FAdd, Op.FSub, Op.FMul, Op.FDiv}
_INT_COMPARES = {
    Op.IEqual,
    Op.INotEqual,
    Op.SLessThan,
    Op.SLessThanEqual,
    Op.SGreaterThan,
    Op.SGreaterThanEqual,
}
_FLOAT_COMPARES = {
    Op.FOrdEqual,
    Op.FOrdNotEqual,
    Op.FOrdLessThan,
    Op.FOrdLessThanEqual,
    Op.FOrdGreaterThan,
    Op.FOrdGreaterThanEqual,
}
_LOGICAL_BINOPS = {Op.LogicalAnd, Op.LogicalOr}


class _Validator:
    def __init__(self, module: Module) -> None:
        self.module = module
        self.errors: list[str] = []
        self.defs: dict[int, Instruction] = {}
        self.types: dict[int, tys.Type] = {}

    def error(self, message: str) -> None:
        self.errors.append(message)

    # -- helpers ---------------------------------------------------------------

    def value_type(self, value_id: int) -> tys.Type | None:
        inst = self.defs.get(value_id)
        if inst is None or inst.type_id is None:
            return None
        return self.types.get(inst.type_id)

    def element_scalar_or_vector(self, ty: tys.Type) -> tys.Type:
        """Scalar element of a scalar-or-vector type (identity for scalars)."""
        return ty.element if isinstance(ty, tys.VectorType) else ty

    # -- top level -------------------------------------------------------------

    def run(self) -> list[str]:
        try:
            self.defs = self.module.def_map()
        except IrError as exc:
            return [str(exc)]
        self.types = self.module.type_table()
        self.check_id_bound()
        self.check_globals()
        self.check_entry_point()
        for function in self.module.functions:
            self.check_function(function)
        return self.errors

    def check_id_bound(self) -> None:
        for rid in self.defs:
            if rid < 1:
                self.error(f"id %{rid} is not positive")
            if rid >= self.module.id_bound:
                self.error(f"id %{rid} exceeds id bound {self.module.id_bound}")

    def check_globals(self) -> None:
        seen: set[int] = set()
        for inst in self.module.global_insts:
            info = op_info(inst.opcode)
            if not (info.is_type_decl or info.is_constant_decl or inst.opcode is Op.Variable):
                self.error(f"{inst.opcode} is not allowed at module scope")
                continue
            for used in inst.used_ids():
                if used not in seen:
                    self.error(
                        f"global %{inst.result_id} references %{used} "
                        "before its declaration"
                    )
            if inst.result_id is not None:
                seen.add(inst.result_id)
            if inst.opcode is Op.Variable:
                self.check_global_variable(inst)
            if inst.opcode is Op.Constant:
                self.check_scalar_constant(inst)
            if inst.opcode in (Op.ConstantTrue, Op.ConstantFalse):
                if not isinstance(self.types.get(inst.type_id), tys.BoolType):
                    self.error(f"%{inst.result_id}: boolean constant must have bool type")
            if inst.opcode is Op.ConstantComposite:
                self.check_composite_constant(inst)

    def check_scalar_constant(self, inst: Instruction) -> None:
        ty = self.types.get(inst.type_id)
        value = inst.operands[0]
        if isinstance(ty, tys.IntType) and not isinstance(value, int):
            self.error(f"%{inst.result_id}: integer constant with non-int literal")
        elif isinstance(ty, tys.FloatType) and not isinstance(value, (int, float)):
            self.error(f"%{inst.result_id}: float constant with non-numeric literal")
        elif not isinstance(ty, (tys.IntType, tys.FloatType)):
            self.error(f"%{inst.result_id}: OpConstant type must be int or float")

    def check_composite_constant(self, inst: Instruction) -> None:
        ty = self.types.get(inst.type_id)
        if ty is None or not ty.is_composite():
            self.error(f"%{inst.result_id}: OpConstantComposite needs a composite type")
            return
        expected = tys.composite_member_count(ty)
        if len(inst.operands) != expected:
            self.error(
                f"%{inst.result_id}: composite constant has {len(inst.operands)} "
                f"members, type wants {expected}"
            )
            return
        for i, member in enumerate(inst.operands):
            member_ty = self.value_type(int(member))
            if member_ty != tys.composite_member_type(ty, i):
                self.error(
                    f"%{inst.result_id}: composite member {i} has type "
                    f"{member_ty}, expected {tys.composite_member_type(ty, i)}"
                )

    def check_global_variable(self, inst: Instruction) -> None:
        ty = self.types.get(inst.type_id)
        if not isinstance(ty, tys.PointerType):
            self.error(f"%{inst.result_id}: variable type must be a pointer")
            return
        storage = str(inst.operands[0])
        if storage != ty.storage.value:
            self.error(
                f"%{inst.result_id}: storage class {storage} does not match "
                f"pointer type {ty.storage.value}"
            )
        if ty.storage is tys.StorageClass.FUNCTION:
            self.error(f"%{inst.result_id}: Function-storage variable at module scope")
        if len(inst.operands) > 1:
            init = self.defs.get(int(inst.operands[1]))
            if init is None or not op_info(init.opcode).is_constant_decl:
                self.error(f"%{inst.result_id}: initializer must be a constant")

    def check_entry_point(self) -> None:
        if self.module.entry_point_id is None:
            self.error("module has no entry point")
            return
        if not self.module.has_function(self.module.entry_point_id):
            self.error(f"entry point %{self.module.entry_point_id} is not a function")
            return
        entry = self.module.get_function(self.module.entry_point_id)
        if entry.params:
            self.error("entry point must take no parameters")
        if not isinstance(self.types.get(entry.return_type_id), tys.VoidType):
            self.error("entry point must return void")

    # -- functions -------------------------------------------------------------

    def check_function(self, function: Function) -> None:
        fid = function.result_id
        fn_ty = self.types.get(function.function_type_id)
        if not isinstance(fn_ty, tys.FunctionType):
            self.error(f"function %{fid}: type operand is not an OpTypeFunction")
            return
        if function.control not in FUNCTION_CONTROLS:
            self.error(f"function %{fid}: bad function control {function.control!r}")
        ret_ty = self.types.get(function.return_type_id)
        if ret_ty != fn_ty.return_type:
            self.error(f"function %{fid}: result type differs from function type")
        if len(function.params) != len(fn_ty.params):
            self.error(
                f"function %{fid}: has {len(function.params)} parameters, "
                f"type wants {len(fn_ty.params)}"
            )
        else:
            for i, param in enumerate(function.params):
                if self.types.get(param.type_id) != fn_ty.params[i]:
                    self.error(f"function %{fid}: parameter {i} type mismatch")
        if not function.blocks:
            self.error(f"function %{fid}: has no blocks")
            return

        labels = [b.label_id for b in function.blocks]
        if len(set(labels)) != len(labels):
            self.error(f"function %{fid}: duplicate block labels")
            return

        for block in function.blocks:
            if block.terminator is None:
                self.error(f"block %{block.label_id}: missing terminator")
        if any(b.terminator is None for b in function.blocks):
            return

        cfg = Cfg.build(function)
        self.check_block_structure(function, cfg)
        self.check_branch_targets(function)
        if self.errors:
            # Availability checks assume structurally sane CFGs.
            pass
        availability = Availability(self.module, function)
        for block in function.blocks:
            self.check_phis(function, block, cfg, availability)
            self.check_uses(function, block, availability)
            for inst in block.instructions:
                self.check_instruction_types(function, inst)
            self.check_terminator_types(function, block, ret_ty)
        self.check_local_variables(function)
        if not cfg.dominance_respecting_order():
            self.error(f"function %{fid}: block order violates dominance rule")

    def check_block_structure(self, function: Function, cfg: Cfg) -> None:
        for block in function.blocks:
            seen_non_phi = False
            for inst in block.instructions:
                if inst.opcode is Op.Phi:
                    if seen_non_phi:
                        self.error(
                            f"block %{block.label_id}: OpPhi after non-phi instruction"
                        )
                else:
                    seen_non_phi = True
                info = op_info(inst.opcode)
                if info.is_terminator:
                    self.error(
                        f"block %{block.label_id}: terminator {inst.opcode} in body"
                    )
                if info.is_type_decl or info.is_constant_decl:
                    self.error(
                        f"block %{block.label_id}: declaration {inst.opcode} in body"
                    )

    def check_branch_targets(self, function: Function) -> None:
        labels = {b.label_id for b in function.blocks}
        for block in function.blocks:
            for succ in block.successors():
                if succ not in labels:
                    self.error(
                        f"block %{block.label_id}: branch to unknown block %{succ}"
                    )

    def check_phis(
        self, function: Function, block, cfg: Cfg, availability: Availability
    ) -> None:
        if block.label_id not in cfg.reachable:
            # Unreachable blocks may carry stale phi edges (e.g. after branch
            # folding); dominance and predecessor matching are vacuous there.
            return
        preds = set(function.predecessors(block.label_id))
        for phi in block.phis():
            pairs = phi.phi_pairs()
            pair_preds = [p for _, p in pairs]
            if set(pair_preds) != preds or len(pair_preds) != len(set(pair_preds)):
                self.error(
                    f"phi %{phi.result_id}: predecessors {sorted(pair_preds)} do not "
                    f"match block predecessors {sorted(preds)}"
                )
                continue
            phi_ty = self.types.get(phi.type_id)
            for value_id, pred in pairs:
                value_ty = self.value_type(value_id)
                if value_ty != phi_ty:
                    self.error(
                        f"phi %{phi.result_id}: incoming %{value_id} has type "
                        f"{value_ty}, expected {phi_ty}"
                    )
                if pred in cfg.reachable and not availability.available_at(
                    value_id, pred, None
                ):
                    self.error(
                        f"phi %{phi.result_id}: %{value_id} not available at end "
                        f"of predecessor %{pred}"
                    )

    def check_uses(self, function: Function, block, availability: Availability) -> None:
        cfg = availability.cfg
        if block.label_id not in cfg.reachable:
            # SPIR-V still requires defs to exist, but dominance is vacuous in
            # unreachable code; we only require that used ids are defined.
            for inst in block.all_instructions():
                for used in inst.used_ids():
                    if used not in self.defs:
                        self.error(f"%{used} used but never defined")
            return
        for inst in block.instructions:
            if inst.opcode is Op.Phi:
                continue  # checked edge-wise in check_phis
            for used in inst.used_ids():
                if used not in self.defs:
                    self.error(f"%{used} used but never defined")
                    continue
                if used == inst.type_id:
                    continue
                used_inst = self.defs[used]
                if op_info(used_inst.opcode).is_type_decl:
                    continue
                if used_inst.opcode is Op.Label:
                    self.error(
                        f"%{inst.result_id or block.label_id}: label %{used} used "
                        "as a value"
                    )
                    continue
                if not availability.available_at(used, block.label_id, inst):
                    self.error(
                        f"use of %{used} in block %{block.label_id} is not "
                        "dominated by its definition"
                    )
        term = block.terminator
        assert term is not None
        for used in term.used_ids():
            if used not in self.defs:
                self.error(f"%{used} used but never defined")
                continue
            if self.defs[used].opcode is Op.Label:
                continue  # branch targets
            if not availability.available_at(used, block.label_id, None):
                self.error(
                    f"terminator of %{block.label_id} uses %{used} which is "
                    "not available"
                )

    def check_local_variables(self, function: Function) -> None:
        entry = function.entry_block()
        for block in function.blocks:
            prefix = True
            for inst in block.instructions:
                if inst.opcode is Op.Variable:
                    if block is not entry:
                        self.error(
                            f"%{inst.result_id}: local variable outside entry block"
                        )
                    elif not prefix:
                        self.error(
                            f"%{inst.result_id}: local variable after "
                            "non-variable instruction"
                        )
                    storage = str(inst.operands[0])
                    if storage != tys.StorageClass.FUNCTION.value:
                        self.error(
                            f"%{inst.result_id}: local variable must use "
                            "Function storage"
                        )
                elif inst.opcode is not Op.Phi:
                    prefix = False

    # -- type rules ------------------------------------------------------------

    def check_instruction_types(self, function: Function, inst: Instruction) -> None:
        op = inst.opcode
        result_ty = self.types.get(inst.type_id) if inst.type_id else None

        def operand_ty(index: int) -> tys.Type | None:
            return self.value_type(int(inst.operands[index]))

        if op in _INT_BINOPS or op in _FLOAT_BINOPS or op in _LOGICAL_BINOPS:
            want_scalar: type
            if op in _INT_BINOPS:
                want_scalar = tys.IntType
            elif op in _FLOAT_BINOPS:
                want_scalar = tys.FloatType
            else:
                want_scalar = tys.BoolType
            if result_ty is None or not isinstance(
                self.element_scalar_or_vector(result_ty), want_scalar
            ):
                self.error(f"%{inst.result_id}: {op} has wrong result type {result_ty}")
            for i in (0, 1):
                if operand_ty(i) != result_ty:
                    self.error(
                        f"%{inst.result_id}: {op} operand {i} type "
                        f"{operand_ty(i)} != result type {result_ty}"
                    )
        elif op in (Op.SNegate, Op.FNegate, Op.LogicalNot):
            if operand_ty(0) != result_ty:
                self.error(f"%{inst.result_id}: {op} operand type mismatch")
        elif op in _INT_COMPARES or op in _FLOAT_COMPARES:
            if not isinstance(result_ty, tys.BoolType):
                self.error(f"%{inst.result_id}: comparison must produce bool")
            want = tys.IntType if op in _INT_COMPARES else tys.FloatType
            for i in (0, 1):
                ty = operand_ty(i)
                if ty is None or not isinstance(self.element_scalar_or_vector(ty), want):
                    self.error(f"%{inst.result_id}: {op} operand {i} has type {ty}")
            if operand_ty(0) != operand_ty(1):
                self.error(f"%{inst.result_id}: comparison operand types differ")
        elif op is Op.Select:
            if not isinstance(operand_ty(0), tys.BoolType):
                self.error(f"%{inst.result_id}: select condition must be bool")
            if operand_ty(1) != result_ty or operand_ty(2) != result_ty:
                self.error(f"%{inst.result_id}: select arm types must match result")
        elif op is Op.Load:
            ptr_ty = operand_ty(0)
            if not isinstance(ptr_ty, tys.PointerType):
                self.error(f"%{inst.result_id}: load from non-pointer")
            elif ptr_ty.pointee != result_ty:
                self.error(
                    f"%{inst.result_id}: load result {result_ty} != pointee "
                    f"{ptr_ty.pointee}"
                )
        elif op is Op.Store:
            ptr_ty = operand_ty(0)
            if not isinstance(ptr_ty, tys.PointerType):
                self.error("store to non-pointer")
            elif ptr_ty.storage in (tys.StorageClass.UNIFORM, tys.StorageClass.INPUT):
                self.error(f"store to read-only storage {ptr_ty.storage}")
            elif operand_ty(1) != ptr_ty.pointee:
                self.error(
                    f"store value type {operand_ty(1)} != pointee {ptr_ty.pointee}"
                )
        elif op is Op.AccessChain:
            self.check_access_chain(inst, result_ty)
        elif op is Op.CopyObject:
            if operand_ty(0) != result_ty:
                self.error(f"%{inst.result_id}: copy type mismatch")
        elif op is Op.CompositeConstruct:
            if result_ty is None or not result_ty.is_composite():
                self.error(f"%{inst.result_id}: construct needs composite result")
            else:
                expected = tys.composite_member_count(result_ty)
                if len(inst.operands) != expected:
                    self.error(
                        f"%{inst.result_id}: construct has {len(inst.operands)} "
                        f"members, type wants {expected}"
                    )
                else:
                    for i in range(expected):
                        if operand_ty(i) != tys.composite_member_type(result_ty, i):
                            self.error(
                                f"%{inst.result_id}: construct member {i} type mismatch"
                            )
        elif op is Op.CompositeExtract:
            base_ty = operand_ty(0)
            indices = tuple(int(x) for x in inst.operands[1:])
            try:
                extracted = tys.walk_composite(base_ty, indices) if base_ty else None
            except (TypeError, IndexError):
                extracted = None
            if extracted is None or extracted != result_ty:
                self.error(
                    f"%{inst.result_id}: extract {indices} from {base_ty} does "
                    f"not yield {result_ty}"
                )
        elif op is Op.CompositeInsert:
            base_ty = operand_ty(1)
            indices = tuple(int(x) for x in inst.operands[2:])
            try:
                slot = tys.walk_composite(base_ty, indices) if base_ty else None
            except (TypeError, IndexError):
                slot = None
            if base_ty != result_ty:
                self.error(f"%{inst.result_id}: insert result must match composite")
            if slot is None or operand_ty(0) != slot:
                self.error(f"%{inst.result_id}: insert object type mismatch")
        elif op is Op.ConvertSToF:
            if not isinstance(operand_ty(0), tys.IntType) or not isinstance(
                result_ty, tys.FloatType
            ):
                self.error(f"%{inst.result_id}: ConvertSToF int->float expected")
        elif op is Op.ConvertFToS:
            if not isinstance(operand_ty(0), tys.FloatType) or not isinstance(
                result_ty, tys.IntType
            ):
                self.error(f"%{inst.result_id}: ConvertFToS float->int expected")
        elif op is Op.FunctionCall:
            self.check_call(inst, result_ty)
        elif op is Op.Variable:
            if not isinstance(result_ty, tys.PointerType):
                self.error(f"%{inst.result_id}: variable type must be a pointer")

    def check_access_chain(self, inst: Instruction, result_ty) -> None:
        base_ty = self.value_type(int(inst.operands[0]))
        if not isinstance(base_ty, tys.PointerType):
            self.error(f"%{inst.result_id}: access chain base must be a pointer")
            return
        current = base_ty.pointee
        for index_id in inst.operands[1:]:
            index_ty = self.value_type(int(index_id))
            if not isinstance(index_ty, tys.IntType):
                self.error(f"%{inst.result_id}: access chain index must be int")
                return
            if not current.is_composite():
                self.error(f"%{inst.result_id}: access chain into non-composite")
                return
            if isinstance(current, tys.StructType):
                index_inst = self.defs.get(int(index_id))
                if index_inst is None or index_inst.opcode is not Op.Constant:
                    self.error(
                        f"%{inst.result_id}: struct index must be a constant"
                    )
                    return
                member = int(index_inst.operands[0])
                if not 0 <= member < len(current.members):
                    self.error(f"%{inst.result_id}: struct index out of range")
                    return
                current = current.members[member]
            else:
                current = tys.composite_member_type(current, 0)
        expected = tys.PointerType(base_ty.storage, current)
        if result_ty != expected:
            self.error(
                f"%{inst.result_id}: access chain result {result_ty} != {expected}"
            )

    def check_call(self, inst: Instruction, result_ty) -> None:
        callee_id = int(inst.operands[0])
        if not self.module.has_function(callee_id):
            self.error(f"%{inst.result_id}: call to non-function %{callee_id}")
            return
        callee = self.module.get_function(callee_id)
        fn_ty = self.types.get(callee.function_type_id)
        assert isinstance(fn_ty, tys.FunctionType)
        args = inst.operands[1:]
        if len(args) != len(fn_ty.params):
            self.error(
                f"%{inst.result_id}: call passes {len(args)} args, "
                f"callee wants {len(fn_ty.params)}"
            )
            return
        for i, arg in enumerate(args):
            if self.value_type(int(arg)) != fn_ty.params[i]:
                self.error(f"%{inst.result_id}: call argument {i} type mismatch")
        if result_ty != fn_ty.return_type:
            self.error(f"%{inst.result_id}: call result type mismatch")

    def check_terminator_types(self, function: Function, block, ret_ty) -> None:
        term = block.terminator
        assert term is not None
        if term.opcode is Op.BranchConditional:
            cond_ty = self.value_type(int(term.operands[0]))
            if not isinstance(cond_ty, tys.BoolType):
                self.error(f"block %{block.label_id}: branch condition must be bool")
        elif term.opcode is Op.Return:
            if not isinstance(ret_ty, tys.VoidType):
                self.error(
                    f"block %{block.label_id}: OpReturn in non-void function"
                )
        elif term.opcode is Op.ReturnValue:
            if isinstance(ret_ty, tys.VoidType):
                self.error(f"block %{block.label_id}: OpReturnValue in void function")
            elif self.value_type(int(term.operands[0])) != ret_ty:
                self.error(f"block %{block.label_id}: return value type mismatch")


def validate(module: Module) -> list[str]:
    """Validate *module*, returning a list of errors (empty when valid)."""
    return _Validator(module).run()


def check(module: Module) -> None:
    """Raise :class:`ValidationError` when *module* is invalid."""
    errors = validate(module)
    if errors:
        raise ValidationError(errors)


def is_valid(module: Module) -> bool:
    return not validate(module)
