"""Convenience construction API for IR modules.

:class:`ModuleBuilder` interns types and constants (SPIR-V forbids duplicate
scalar type declarations) and hands out :class:`FunctionBuilder` /
:class:`BlockBuilder` helpers, so corpus generators and tests can write
straight-line construction code instead of assembling instruction lists.
"""

from __future__ import annotations

from repro.ir import types as tys
from repro.ir.module import Block, Function, Instruction, IrError, Module, Operand
from repro.ir.opcodes import FUNCTION_CONTROL_NONE, Op


class ModuleBuilder:
    """Builds a :class:`Module` incrementally."""

    def __init__(self) -> None:
        self.module = Module()

    @classmethod
    def wrap(cls, module: Module) -> "ModuleBuilder":
        """Wrap an existing module so types/constants can be interned into it."""
        builder = cls.__new__(cls)
        builder.module = module
        return builder

    # -- types -------------------------------------------------------------------

    def type_id(self, ty: tys.Type) -> int:
        """Id of the declaration of *ty*, creating the declaration if needed.

        Component types are created recursively.
        """
        existing = self.module.find_type_id(ty)
        if existing is not None:
            return existing
        if isinstance(ty, tys.VoidType):
            inst = Instruction(Op.TypeVoid, self.module.fresh_id())
        elif isinstance(ty, tys.BoolType):
            inst = Instruction(Op.TypeBool, self.module.fresh_id())
        elif isinstance(ty, tys.IntType):
            inst = Instruction(
                Op.TypeInt, self.module.fresh_id(), None, [ty.width, ty.signed]
            )
        elif isinstance(ty, tys.FloatType):
            inst = Instruction(Op.TypeFloat, self.module.fresh_id(), None, [ty.width])
        elif isinstance(ty, tys.VectorType):
            element = self.type_id(ty.element)
            inst = Instruction(
                Op.TypeVector, self.module.fresh_id(), None, [element, ty.count]
            )
        elif isinstance(ty, tys.ArrayType):
            element = self.type_id(ty.element)
            inst = Instruction(
                Op.TypeArray, self.module.fresh_id(), None, [element, ty.length]
            )
        elif isinstance(ty, tys.StructType):
            members = [self.type_id(m) for m in ty.members]
            inst = Instruction(Op.TypeStruct, self.module.fresh_id(), None, members)
        elif isinstance(ty, tys.PointerType):
            pointee = self.type_id(ty.pointee)
            inst = Instruction(
                Op.TypePointer,
                self.module.fresh_id(),
                None,
                [ty.storage.value, pointee],
            )
        elif isinstance(ty, tys.FunctionType):
            ret = self.type_id(ty.return_type)
            params = [self.type_id(p) for p in ty.params]
            inst = Instruction(
                Op.TypeFunction, self.module.fresh_id(), None, [ret, *params]
            )
        else:  # pragma: no cover - exhaustive over Type subclasses
            raise IrError(f"cannot declare type {ty}")
        return self.module.add_global(inst)

    # Common scalar shorthands.
    def void(self) -> int:
        return self.type_id(tys.VoidType())

    def bool_(self) -> int:
        return self.type_id(tys.BoolType())

    def int_(self) -> int:
        return self.type_id(tys.IntType())

    def float_(self) -> int:
        return self.type_id(tys.FloatType())

    def vec(self, element: tys.Type, count: int) -> int:
        return self.type_id(tys.VectorType(element, count))

    def ptr(self, storage: tys.StorageClass, pointee: tys.Type) -> int:
        return self.type_id(tys.PointerType(storage, pointee))

    # -- constants -----------------------------------------------------------------

    def constant(self, ty: tys.Type, value: Operand) -> int:
        """Id of a scalar constant, interned by (type, value)."""
        type_id = self.type_id(ty)
        if isinstance(ty, tys.BoolType):
            existing = self.module.find_constant_id(type_id, bool(value))
            if existing is not None:
                return existing
            op = Op.ConstantTrue if value else Op.ConstantFalse
            inst = Instruction(op, self.module.fresh_id(), type_id)
        else:
            existing = self.module.find_constant_id(type_id, value)
            if existing is not None:
                return existing
            inst = Instruction(Op.Constant, self.module.fresh_id(), type_id, [value])
        return self.module.add_global(inst)

    def int_const(self, value: int) -> int:
        return self.constant(tys.IntType(), int(value))

    def float_const(self, value: float) -> int:
        return self.constant(tys.FloatType(), float(value))

    def bool_const(self, value: bool) -> int:
        return self.constant(tys.BoolType(), bool(value))

    def composite_const(self, ty: tys.Type, member_ids: list[int]) -> int:
        type_id = self.type_id(ty)
        for inst in self.module.global_insts:
            if (
                inst.opcode is Op.ConstantComposite
                and inst.type_id == type_id
                and [int(m) for m in inst.operands] == [int(m) for m in member_ids]
            ):
                assert inst.result_id is not None
                return inst.result_id
        inst = Instruction(
            Op.ConstantComposite, self.module.fresh_id(), type_id, list(member_ids)
        )
        return self.module.add_global(inst)

    def undef(self, ty: tys.Type) -> int:
        type_id = self.type_id(ty)
        inst = Instruction(Op.Undef, self.module.fresh_id(), type_id)
        return self.module.add_global(inst)

    # -- globals ---------------------------------------------------------------------

    def global_variable(
        self,
        name: str,
        pointee: tys.Type,
        storage: tys.StorageClass,
        initializer: int | None = None,
    ) -> int:
        """Declare a module-scope variable bound to *name* for I/O purposes."""
        ptr_ty = self.ptr(storage, pointee)
        operands: list[Operand] = [storage.value]
        if initializer is not None:
            operands.append(initializer)
        inst = Instruction(Op.Variable, self.module.fresh_id(), ptr_ty, operands)
        rid = self.module.add_global(inst)
        self.module.names[rid] = name
        return rid

    def uniform(self, name: str, pointee: tys.Type) -> int:
        return self.global_variable(name, pointee, tys.StorageClass.UNIFORM)

    def output(self, name: str, pointee: tys.Type) -> int:
        return self.global_variable(name, pointee, tys.StorageClass.OUTPUT)

    # -- functions -------------------------------------------------------------------

    def function(
        self,
        name: str,
        return_type: tys.Type,
        param_types: list[tys.Type] | None = None,
        control: str = FUNCTION_CONTROL_NONE,
    ) -> "FunctionBuilder":
        param_types = param_types or []
        fn_type = self.type_id(tys.FunctionType(return_type, tuple(param_types)))
        ret_type_id = self.type_id(return_type)
        fn_inst = Instruction(
            Op.Function, self.module.fresh_id(), ret_type_id, [control, fn_type]
        )
        function = Function(fn_inst)
        for param_ty in param_types:
            param = Instruction(
                Op.FunctionParameter, self.module.fresh_id(), self.type_id(param_ty)
            )
            function.params.append(param)
        self.module.functions.append(function)
        self.module.names[function.result_id] = name
        return FunctionBuilder(self, function)

    def entry_point(self, function_id: int, name: str = "main") -> None:
        self.module.entry_point_id = function_id
        self.module.entry_point_name = name

    def build(self) -> Module:
        return self.module


class FunctionBuilder:
    """Builds the blocks of one function."""

    def __init__(self, parent: ModuleBuilder, function: Function) -> None:
        self.parent = parent
        self.function = function

    @property
    def result_id(self) -> int:
        return self.function.result_id

    def param_ids(self) -> list[int]:
        return [p.result_id for p in self.function.params if p.result_id is not None]

    def block(self, label_id: int | None = None) -> "BlockBuilder":
        if label_id is None:
            label_id = self.parent.module.fresh_id()
        block = Block(label_id)
        self.function.blocks.append(block)
        return BlockBuilder(self.parent, block)


class BlockBuilder:
    """Appends instructions to one block."""

    def __init__(self, parent: ModuleBuilder, block: Block) -> None:
        self.parent = parent
        self.block = block

    @property
    def label_id(self) -> int:
        return self.block.label_id

    @property
    def module(self) -> Module:
        return self.parent.module

    def emit(
        self,
        opcode: Op,
        type_id: int | None = None,
        operands: list[Operand] | None = None,
    ) -> int:
        """Append a value-producing instruction; returns its fresh result id."""
        inst = Instruction(opcode, self.module.fresh_id(), type_id, operands or [])
        self.block.instructions.append(inst)
        assert inst.result_id is not None
        return inst.result_id

    def emit_void(self, opcode: Op, operands: list[Operand] | None = None) -> None:
        """Append a non-value instruction (e.g. ``OpStore``)."""
        inst = Instruction(opcode, None, None, operands or [])
        self.block.instructions.append(inst)

    # Typed shorthands -----------------------------------------------------------

    def binop(self, opcode: Op, result_ty: tys.Type, lhs: int, rhs: int) -> int:
        return self.emit(opcode, self.parent.type_id(result_ty), [lhs, rhs])

    def iadd(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.IAdd, tys.IntType(), lhs, rhs)

    def isub(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.ISub, tys.IntType(), lhs, rhs)

    def imul(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.IMul, tys.IntType(), lhs, rhs)

    def sdiv(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.SDiv, tys.IntType(), lhs, rhs)

    def fadd(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.FAdd, tys.FloatType(), lhs, rhs)

    def fsub(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.FSub, tys.FloatType(), lhs, rhs)

    def fmul(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.FMul, tys.FloatType(), lhs, rhs)

    def slt(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.SLessThan, tys.BoolType(), lhs, rhs)

    def sle(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.SLessThanEqual, tys.BoolType(), lhs, rhs)

    def ieq(self, lhs: int, rhs: int) -> int:
        return self.binop(Op.IEqual, tys.BoolType(), lhs, rhs)

    def load(self, pointee_ty: tys.Type, pointer: int) -> int:
        return self.emit(Op.Load, self.parent.type_id(pointee_ty), [pointer])

    def store(self, pointer: int, value: int) -> None:
        self.emit_void(Op.Store, [pointer, value])

    def access_chain(
        self, result_ptr_ty: tys.PointerType, base: int, indices: list[int]
    ) -> int:
        return self.emit(
            Op.AccessChain, self.parent.type_id(result_ptr_ty), [base, *indices]
        )

    def local_variable(self, pointee: tys.Type, name: str | None = None) -> int:
        """Declare a Function-storage variable in this block (entry block only,
        per the validator)."""
        ptr_ty = self.parent.ptr(tys.StorageClass.FUNCTION, pointee)
        inst = Instruction(
            Op.Variable,
            self.module.fresh_id(),
            ptr_ty,
            [tys.StorageClass.FUNCTION.value],
        )
        # Variables must precede other instructions in the entry block.
        insert_at = 0
        for i, existing in enumerate(self.block.instructions):
            if existing.opcode is Op.Variable:
                insert_at = i + 1
        self.block.instructions.insert(insert_at, inst)
        assert inst.result_id is not None
        if name is not None:
            self.module.names[inst.result_id] = name
        return inst.result_id

    def phi(self, ty: tys.Type, pairs: list[tuple[int, int]]) -> int:
        flat: list[Operand] = []
        for value_id, pred_id in pairs:
            flat.extend([value_id, pred_id])
        return self.emit(Op.Phi, self.parent.type_id(ty), flat)

    def call(self, return_ty: tys.Type, callee: int, args: list[int]) -> int:
        return self.emit(
            Op.FunctionCall, self.parent.type_id(return_ty), [callee, *args]
        )

    # Terminators ------------------------------------------------------------------

    def _terminate(self, inst: Instruction) -> None:
        if self.block.terminator is not None:
            raise IrError(f"block %{self.block.label_id} already terminated")
        self.block.terminator = inst

    def branch(self, target: int) -> None:
        self._terminate(Instruction(Op.Branch, None, None, [target]))

    def branch_cond(self, cond: int, true_target: int, false_target: int) -> None:
        self._terminate(
            Instruction(Op.BranchConditional, None, None, [cond, true_target, false_target])
        )

    def ret(self) -> None:
        self._terminate(Instruction(Op.Return))

    def ret_value(self, value: int) -> None:
        self._terminate(Instruction(Op.ReturnValue, None, None, [value]))

    def kill(self) -> None:
        self._terminate(Instruction(Op.Kill))

    def unreachable(self) -> None:
        self._terminate(Instruction(Op.Unreachable))
