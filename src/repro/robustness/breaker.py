"""Per-tenant circuit breakers over decorrelated-jitter cooldowns.

A tenant whose campaigns keep failing (bad spec, poisoned corpus, a target
that crashes every worker) would otherwise burn the shared fleet on work
that cannot succeed.  The breaker is the classic three-state machine:

* ``CLOSED`` — everything admitted; ``failure_threshold`` *consecutive*
  campaign failures open it (any success resets the streak);
* ``OPEN`` — submissions rejected with a ``retry_after`` hint until the
  cooldown elapses; the cooldown is drawn from a seeded
  :class:`~repro.robustness.retry.DecorrelatedJitter`, so a fleet of
  breakers that opened together does not re-admit in lockstep, yet every
  delay sequence is reproducible from the seed;
* ``HALF_OPEN`` — exactly one trial submission is admitted.  If the trial
  campaign succeeds the breaker closes (streak cleared); if it fails the
  breaker re-opens with the *next* (longer, jittered) cooldown.

The breaker never touches the clock itself — callers pass ``now`` (the
engine's ``time.monotonic()``), which keeps every transition deterministic
under test-controlled time.
"""

from __future__ import annotations

from repro.robustness.retry import DecorrelatedJitter

CLOSED = "CLOSED"
OPEN = "OPEN"
HALF_OPEN = "HALF_OPEN"


class CircuitBreaker:
    """See module docstring.  Not thread-safe; the engine's lock covers it."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        base_delay: float = 0.5,
        cap: float = 30.0,
        seed: int = 0,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self._jitter = DecorrelatedJitter(base_delay, cap=cap, seed=seed)
        self.state = CLOSED
        self.consecutive_failures = 0
        #: Monotonic instant the OPEN cooldown ends (half-open from then on).
        self._reopen_at = 0.0
        #: True while the single HALF_OPEN trial is in flight (admitted but
        #: not yet succeeded/failed) — further submissions stay rejected.
        self._trial_pending = False

    # -- admission -----------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a submission from this tenant proceed right now?

        In ``HALF_OPEN`` this *consumes* the single trial slot, so call it
        only once every cheaper admission check has already passed.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN and now >= self._reopen_at:
            self.state = HALF_OPEN
            self._trial_pending = False
        if self.state == HALF_OPEN and not self._trial_pending:
            self._trial_pending = True
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds until the next submission could be admitted (0 when
        admitting already)."""
        if self.state == CLOSED:
            return 0.0
        if self.state == HALF_OPEN:
            # A trial is in flight; suggest the base delay as a poll hint.
            return self._jitter.base if self._trial_pending else 0.0
        return max(0.0, self._reopen_at - now)

    # -- outcome reporting ---------------------------------------------------

    def record_failure(self, now: float) -> None:
        """A campaign from this tenant reached FAILED/DEGRADED."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The trial failed: straight back to OPEN, longer cooldown.
            self._open(now)
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    def record_success(self) -> None:
        """A campaign from this tenant completed (DONE/QUARANTINED)."""
        self.consecutive_failures = 0
        self.state = CLOSED
        self._trial_pending = False
        self._jitter.reset()

    def _open(self, now: float) -> None:
        self.state = OPEN
        self._trial_pending = False
        self._reopen_at = now + self._jitter.next()
