"""Campaign and reduction journals: JSONL records enabling checkpoint/resume.

``Harness.run_campaign(journal=...)`` appends one self-contained JSON line
per completed seed; ``resume=True`` replays those records instead of
re-fuzzing, so a campaign killed mid-run (even by ``SIGKILL``) restarts
where it left off and yields a :class:`~repro.core.harness.CampaignResult`
identical to an uninterrupted run.

Record shape (one per line)::

    {"v": 1, "seed": 3, "program": "loops_nested", "transformation_count": 41,
     "skipped_targets": [...], "faults": [["NVIDIA", "timeout"], ...],
     "findings": [{"target": ..., "signature": ..., "kind": ...,
                   "optimized_flow": ..., "nondeterministic": ...,
                   "ground_truth_bug": ..., "inputs": {...},
                   "transformations": [...]}]}

Findings reference their original program *by name* (as
:class:`~repro.perf.parallel.CampaignSpec` does) — the loader rebuilds the
module from the harness's reference corpus, so journal files stay small and
the resumed findings are behaviourally identical to freshly computed ones.
A line truncated by an untimely kill is ignored; its seed is simply re-run.
Every line additionally carries a mandatory CRC-32 (``crc``) over its
canonical JSON, so *interior* corruption — a flipped byte that still
parses — is detected and the record discarded rather than surfacing
partially merged (see :func:`seal_record` / :func:`parse_record`;
pre-checksum journals re-run their seeds).

:class:`ReductionJournal` applies the same fsync-per-line discipline to the
fault-tolerant reducer (:mod:`repro.robustness.reduction`): one header line
binding the journal to the initial transformation sequence, then one record
per oracle *decision* — candidate content key, final verdict, and the probe
/ vote / fault accounting the decision cost.  Because the delta-debugging
loop is a deterministic function of the verdict sequence, replaying the
journal reproduces the exact candidate order, so a resumed reduction appends
precisely the records the killed run never got to write and finishes with a
journal (and :class:`~repro.core.reducer.ReductionResult`) byte-identical to
an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.core.transformation import sequence_from_json, sequence_to_json
from repro.robustness.chaos import REAL_FILEOPS, FileOps

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.harness import Finding, SeedRun

JOURNAL_VERSION = 1
REDUCTION_JOURNAL_VERSION = 1


def seal_record(record: dict) -> bytes:
    """One journal line for *record*: canonical JSON plus a ``crc`` field.

    The CRC-32 covers the canonical (sorted-keys) JSON of the record
    *without* the ``crc`` field, so a loader can recompute it from the
    parsed payload.  Torn trailing lines were always caught by the JSON
    parser; the checksum extends that to *interior* corruption — a flipped
    byte that still happens to parse (``"seed": 3`` -> ``"seed": 7``) now
    fails verification instead of silently resurfacing as a wrong record.
    """
    body = json.dumps(record, sort_keys=True)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return (
        json.dumps({**record, "crc": crc}, sort_keys=True).encode("utf-8")
        + b"\n"
    )


def parse_record(line: str) -> dict | None:
    """Parse and verify one journal line; ``None`` for anything corrupt.

    The checksum is *mandatory*: a record without a valid ``crc`` is
    rejected, because treating crc-less lines as legacy would let a single
    flipped byte in the ``"crc"`` key itself silently disarm verification
    (the corruption fuzz tests construct exactly that line).  Journals
    written before checksumming simply re-run their seeds.  The returned
    dict never contains the ``crc`` field.
    """
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None  # truncated by a mid-write kill, or garbage
    if not isinstance(record, dict):
        return None
    crc = record.pop("crc", None)
    body = json.dumps(record, sort_keys=True)
    if crc != zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF:
        return None  # interior corruption (or a pre-checksum record)
    return record


def run_to_record(run: "SeedRun") -> dict:
    return {
        "v": JOURNAL_VERSION,
        "seed": run.seed,
        "program": run.program_name,
        "transformation_count": run.transformation_count,
        "skipped_targets": list(run.skipped_targets),
        "faults": [list(fault) for fault in run.faults],
        "findings": [
            {
                "target": f.target_name,
                "signature": f.signature,
                "kind": f.kind,
                "optimized_flow": f.optimized_flow,
                "nondeterministic": f.nondeterministic,
                "ground_truth_bug": f.ground_truth_bug,
                "inputs": dict(f.inputs),
                "transformations": sequence_to_json(f.transformations),
            }
            for f in run.findings
        ],
    }


def record_to_run(record: dict, references_by_name: dict) -> "SeedRun":
    from repro.core.harness import Finding, SeedRun

    program_name = record["program"]
    program = references_by_name.get(program_name)
    if program is None and record["findings"]:
        raise KeyError(
            f"journal references program {program_name!r}, which is not in "
            "this harness's corpus — resume with the harness that wrote it"
        )
    run = SeedRun(
        program_name=program_name,
        seed=record["seed"],
        transformation_count=record["transformation_count"],
        skipped_targets=tuple(record.get("skipped_targets", ())),
        faults=tuple(
            (target, kind) for target, kind in record.get("faults", ())
        ),
    )
    for entry in record["findings"]:
        run.findings.append(
            Finding(
                target_name=entry["target"],
                program_name=program_name,
                seed=record["seed"],
                signature=entry["signature"],
                kind=entry["kind"],
                optimized_flow=entry["optimized_flow"],
                transformations=sequence_from_json(entry["transformations"]),
                original=program.module,
                inputs=dict(entry["inputs"]),
                ground_truth_bug=entry.get("ground_truth_bug"),
                nondeterministic=entry.get("nondeterministic", False),
            )
        )
    return run


class CampaignJournal:
    """Append-only JSONL journal over a file path.

    All durable writes go through *fileops* (default: the real OS calls),
    the chaos seam that lets tests make any individual ``open``/``write``/
    ``fsync`` fail or tear — see :mod:`repro.robustness.chaos`.
    """

    def __init__(
        self, path: Path | str, *, fileops: FileOps | None = None
    ) -> None:
        self.path = Path(path)
        self.fileops = fileops if fileops is not None else REAL_FILEOPS

    def append(self, run: "SeedRun") -> None:
        self.append_record(run_to_record(run))

    def append_record(self, record: dict) -> None:
        """Append one already-serialized seed record (fsync-per-line).

        The campaign service's fleet workers ship records (not ``SeedRun``
        objects) over their result pipes; the service appends them through
        this path so worker and CLI journals are interchangeable.
        """
        line = seal_record(record)
        fileops = self.fileops
        with fileops.open(self.path, "a+b") as handle:
            if handle.tell() > 0:
                # A kill can truncate the previous record mid-line; start a
                # fresh line so this record stays parseable on later resumes.
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    fileops.write(handle, b"\n")
            fileops.write(handle, line)
            fileops.fsync(handle)

    def append_runs(self, runs) -> None:
        for run in runs:
            self.append(run)

    def load_records(self) -> dict[int, dict]:
        """Verified records keyed by seed; corrupt lines (torn, garbled, or
        failing their checksum) are skipped — their seeds are simply re-run.
        A later valid record for the same seed wins (re-executed lease
        batches journal identical records, so the duplicate is harmless)."""
        records: dict[int, dict] = {}
        if not self.path.exists():
            return records
        with self.path.open("r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                record = parse_record(line)
                if record is None or "seed" not in record:
                    continue
                records[record["seed"]] = record
        return records

    def load(self, references_by_name: dict) -> dict[int, "SeedRun"]:
        """Completed seeds, keyed by seed.  Malformed (e.g. kill-truncated)
        lines are skipped; a later valid record for the same seed wins."""
        return {
            seed: record_to_run(record, references_by_name)
            for seed, record in self.load_records().items()
        }


class ReductionJournal:
    """Append-only JSONL journal of per-candidate reduction verdicts.

    Line 1 is a header ``{"header": true, "sequence": <key>, "length": n}``
    binding the file to one initial transformation sequence; every further
    line records one oracle decision::

        {"v": 1, "key": <candidate content key>, "n": <candidate length>,
         "verdict": bool, "probes": k, "escalations": e, "fault_retries": r,
         "disagreements": d, "faults": {kind: count}, "faulted": bool}

    Candidates are keyed by *content* (the SHA-1 of their canonical JSON), so
    keys survive process death — a resumed reduction rebuilds the same
    transformation objects from the finding and looks decisions up by value.
    """

    def __init__(
        self, path: Path | str, *, fileops: FileOps | None = None
    ) -> None:
        self.path = Path(path)
        self.fileops = fileops if fileops is not None else REAL_FILEOPS

    @staticmethod
    def candidate_key(candidate: Sequence) -> str:
        """A process-stable content fingerprint of a candidate subsequence.

        Real transformation sequences canonicalise through
        :func:`~repro.core.transformation.sequence_to_json`; opaque test
        doubles (the reducer treats elements as black boxes) fall back to
        their ``repr``.
        """
        try:
            payload = json.dumps(sequence_to_json(candidate), sort_keys=True)
        except (AttributeError, TypeError):
            payload = json.dumps([repr(item) for item in candidate])
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def append(self, record: dict) -> None:
        fileops = self.fileops
        with fileops.open(self.path, "ab") as handle:
            fileops.write(handle, seal_record(record))
            fileops.fsync(handle)

    def prepare(
        self, sequence_key: str, length: int, *, resume: bool
    ) -> dict[str, dict]:
        """Open the journal for one reduction run.

        With ``resume=False`` any existing content is discarded and a fresh
        header is written.  With ``resume=True`` the existing records are
        loaded and returned keyed by candidate key; a trailing line torn by
        a mid-write ``SIGKILL`` is *truncated in place* (unlike the campaign
        journal's start-a-fresh-line repair) so the caught-up journal stays
        byte-identical to an uninterrupted run's.  A journal written for a
        different initial sequence raises ``ValueError`` — resuming someone
        else's reduction would replay the wrong verdicts.
        """
        fileops = self.fileops
        header = {
            "v": REDUCTION_JOURNAL_VERSION,
            "header": True,
            "sequence": sequence_key,
            "length": length,
        }
        if not resume or not self.path.exists():
            with fileops.open(self.path, "wb") as handle:
                fileops.write(handle, seal_record(header))
                fileops.fsync(handle)
            return {}
        data = self.path.read_bytes()
        if data and not data.endswith(b"\n"):
            cut = data.rfind(b"\n") + 1
            with fileops.open(self.path, "r+b") as handle:
                handle.truncate(cut)
                fileops.fsync(handle)
            data = data[:cut]
        decisions: dict[str, dict] = {}
        seen_header = False
        for line in data.decode("utf-8", errors="replace").splitlines():
            record = parse_record(line)
            if record is None:
                continue  # torn, garbled, or checksum-failing: re-run it
            if record.get("header"):
                if record.get("sequence") != sequence_key:
                    raise ValueError(
                        "reduction journal was written for a different "
                        "transformation sequence — resume with the finding "
                        "that produced it"
                    )
                seen_header = True
                continue
            if "key" in record and "verdict" in record:
                decisions[record["key"]] = record
        if not seen_header:
            # Empty (or headerless) file: restart it so appends line up.
            with fileops.open(self.path, "wb") as handle:
                fileops.write(handle, seal_record(header))
                fileops.fsync(handle)
            return {}
        return decisions
