"""Campaign journal: per-seed JSONL records enabling checkpoint/resume.

``Harness.run_campaign(journal=...)`` appends one self-contained JSON line
per completed seed; ``resume=True`` replays those records instead of
re-fuzzing, so a campaign killed mid-run (even by ``SIGKILL``) restarts
where it left off and yields a :class:`~repro.core.harness.CampaignResult`
identical to an uninterrupted run.

Record shape (one per line)::

    {"v": 1, "seed": 3, "program": "loops_nested", "transformation_count": 41,
     "skipped_targets": [...], "faults": [["NVIDIA", "timeout"], ...],
     "findings": [{"target": ..., "signature": ..., "kind": ...,
                   "optimized_flow": ..., "nondeterministic": ...,
                   "ground_truth_bug": ..., "inputs": {...},
                   "transformations": [...]}]}

Findings reference their original program *by name* (as
:class:`~repro.perf.parallel.CampaignSpec` does) — the loader rebuilds the
module from the harness's reference corpus, so journal files stay small and
the resumed findings are behaviourally identical to freshly computed ones.
A line truncated by an untimely kill is ignored; its seed is simply re-run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.transformation import sequence_from_json, sequence_to_json

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.harness import Finding, SeedRun

JOURNAL_VERSION = 1


def run_to_record(run: "SeedRun") -> dict:
    return {
        "v": JOURNAL_VERSION,
        "seed": run.seed,
        "program": run.program_name,
        "transformation_count": run.transformation_count,
        "skipped_targets": list(run.skipped_targets),
        "faults": [list(fault) for fault in run.faults],
        "findings": [
            {
                "target": f.target_name,
                "signature": f.signature,
                "kind": f.kind,
                "optimized_flow": f.optimized_flow,
                "nondeterministic": f.nondeterministic,
                "ground_truth_bug": f.ground_truth_bug,
                "inputs": dict(f.inputs),
                "transformations": sequence_to_json(f.transformations),
            }
            for f in run.findings
        ],
    }


def record_to_run(record: dict, references_by_name: dict) -> "SeedRun":
    from repro.core.harness import Finding, SeedRun

    program_name = record["program"]
    program = references_by_name.get(program_name)
    if program is None and record["findings"]:
        raise KeyError(
            f"journal references program {program_name!r}, which is not in "
            "this harness's corpus — resume with the harness that wrote it"
        )
    run = SeedRun(
        program_name=program_name,
        seed=record["seed"],
        transformation_count=record["transformation_count"],
        skipped_targets=tuple(record.get("skipped_targets", ())),
        faults=tuple(
            (target, kind) for target, kind in record.get("faults", ())
        ),
    )
    for entry in record["findings"]:
        run.findings.append(
            Finding(
                target_name=entry["target"],
                program_name=program_name,
                seed=record["seed"],
                signature=entry["signature"],
                kind=entry["kind"],
                optimized_flow=entry["optimized_flow"],
                transformations=sequence_from_json(entry["transformations"]),
                original=program.module,
                inputs=dict(entry["inputs"]),
                ground_truth_bug=entry.get("ground_truth_bug"),
                nondeterministic=entry.get("nondeterministic", False),
            )
        )
    return run


class CampaignJournal:
    """Append-only JSONL journal over a file path."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def append(self, run: "SeedRun") -> None:
        line = json.dumps(run_to_record(run), sort_keys=True)
        with self.path.open("a+b") as handle:
            if handle.tell() > 0:
                # A kill can truncate the previous record mid-line; start a
                # fresh line so this record stays parseable on later resumes.
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append_runs(self, runs) -> None:
        for run in runs:
            self.append(run)

    def load(self, references_by_name: dict) -> dict[int, "SeedRun"]:
        """Completed seeds, keyed by seed.  Malformed (e.g. kill-truncated)
        lines are skipped; a later valid record for the same seed wins."""
        runs: dict[int, "SeedRun"] = {}
        if not self.path.exists():
            return runs
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated by a mid-write kill
                if not isinstance(record, dict) or "seed" not in record:
                    continue
                run = record_to_run(record, references_by_name)
                runs[run.seed] = run
        return runs
