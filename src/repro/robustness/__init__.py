"""Fault-isolated campaign execution (an extension beyond the paper).

The paper's harness assumes every compiler probe returns; industrial
campaigns cannot.  This package keeps long unattended campaigns alive when
targets misbehave:

* :class:`SupervisedTarget` — run each probe in a child process with a
  wall-clock timeout and memory cap; hangs/OOMs/hard crashes become
  ``TIMEOUT`` / ``RESOURCE`` / ``WORKER_CRASH`` outcomes instead of killing
  the campaign.
* :class:`CampaignJournal` — per-seed JSONL checkpoints so an interrupted
  campaign resumes (``Harness.run_campaign(journal=..., resume=True)``).
* :class:`QuarantineTracker` — targets that exceed a fault budget are
  skipped for the rest of the campaign.
* :func:`verdict_is_stable` — re-probe findings and flag flaky verdicts as
  ``nondeterministic`` so deduplication keeps them apart from stable bugs.
* :func:`reduce_with_faults` / :class:`FlakeHardenedOracle` — a fault-
  tolerant wrapper pipeline around the delta-debugging loop: supervised
  probes with per-candidate fault verdicts, adaptive k-of-n voting against
  flaky oracles, a fsync-per-line :class:`ReductionJournal` enabling
  byte-identical ``SIGKILL`` resume, and best-so-far graceful degradation.
* :mod:`repro.robustness.chaos` — the deterministic I/O fault-injection
  seam (:class:`FileOps` / :class:`ChaosFileOps`): every durable writer
  above performs its I/O through an injectable object, so tests can fail
  any *individual* ``write``/``fsync``/``open`` with ENOSPC/EIO, tear it
  at a chosen byte, or simulate ``SIGKILL`` at that exact instant
  (:class:`ChaosKill`); plus raw-socket misbehaving HTTP clients.
* :class:`CircuitBreaker` — per-tenant admission breaker over seeded
  decorrelated-jitter cooldowns (the campaign service's serial-failure
  backstop).
"""

from repro.robustness.breaker import CircuitBreaker
from repro.robustness.chaos import (
    REAL_FILEOPS,
    ChaosFileOps,
    ChaosKill,
    Fault,
    FileOps,
    slow_loris_post,
    truncated_post,
)
from repro.robustness.config import ReductionPolicy, RobustnessConfig
from repro.robustness.journal import (
    CampaignJournal,
    ReductionJournal,
    parse_record,
    record_to_run,
    run_to_record,
    seal_record,
)
from repro.robustness.quarantine import QuarantineTracker
from repro.robustness.reduction import (
    FlakeHardenedOracle,
    ProbeVerdict,
    ReductionAborted,
    reduce_with_faults,
)
from repro.robustness.retry import (
    DecorrelatedJitter,
    backoff_sleep,
    verdict_is_stable,
)
from repro.robustness.supervisor import (
    SupervisedTarget,
    close_targets,
    find_supervised,
    supervise_targets,
)

__all__ = [
    "CampaignJournal",
    "ChaosFileOps",
    "ChaosKill",
    "CircuitBreaker",
    "DecorrelatedJitter",
    "Fault",
    "FileOps",
    "FlakeHardenedOracle",
    "ProbeVerdict",
    "QuarantineTracker",
    "REAL_FILEOPS",
    "ReductionAborted",
    "ReductionJournal",
    "ReductionPolicy",
    "RobustnessConfig",
    "SupervisedTarget",
    "backoff_sleep",
    "close_targets",
    "find_supervised",
    "parse_record",
    "record_to_run",
    "reduce_with_faults",
    "run_to_record",
    "seal_record",
    "slow_loris_post",
    "supervise_targets",
    "truncated_post",
    "verdict_is_stable",
]
