"""Target quarantine: stop probing targets that keep taking probes down.

A target whose probes time out, OOM, or kill their worker is costing the
campaign its fault budget every seed (a hang costs a full ``probe_timeout``
each time).  The tracker counts supervision-level faults per target and,
once a target exceeds its budget, the harness skips it for the rest of the
campaign — the skip is recorded on each :class:`~repro.core.harness.SeedRun`
and summarised on the :class:`~repro.core.harness.CampaignResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compilers.base import TargetOutcome


@dataclass
class QuarantineTracker:
    """Per-campaign fault accounting.  ``budget=None`` never quarantines."""

    budget: int | None = None
    counts: dict[str, int] = field(default_factory=dict)
    last_fault: dict[str, str] = field(default_factory=dict)

    def record_fault(self, target_name: str, outcome: TargetOutcome) -> None:
        self.record_fault_kind(target_name, outcome.kind.value)

    def record_fault_kind(self, target_name: str, kind_value: str) -> None:
        self.counts[target_name] = self.counts.get(target_name, 0) + 1
        self.last_fault[target_name] = kind_value

    def is_quarantined(self, target_name: str) -> bool:
        if self.budget is None:
            return False
        return self.counts.get(target_name, 0) >= self.budget

    def report(self) -> dict[str, str]:
        """Quarantined targets with a human-readable reason each."""
        return {
            name: (
                f"quarantined after {count} probe fault(s) "
                f"(last: {self.last_fault.get(name, 'unknown')})"
            )
            for name, count in sorted(self.counts.items())
            if self.budget is not None and count >= self.budget
        }
