"""Deterministic I/O chaos: the ``FileOps`` seam and seeded fault injection.

Every durable writer in the repo (``CampaignJournal``, ``ReductionJournal``,
``CampaignStore``) performs its I/O through an injectable :class:`FileOps`
object instead of calling ``os`` directly.  In production that object is
:data:`REAL_FILEOPS` — a thin, allocation-free pass-through (the CI bench
gates its overhead at ≤1.05x raw journal-write throughput).  In tests it is
a :class:`ChaosFileOps`, which can make any *individual* ``open`` /
``write`` / ``fsync`` / ``replace`` / directory-fsync call misbehave:

* ``mode="error"`` — raise ``OSError`` with a chosen errno (ENOSPC, EIO);
* ``mode="short"`` — write only a prefix of the payload, then raise ENOSPC:
  the realistic disk-full failure, where part of the record lands before
  the error surfaces;
* ``mode="kill"`` — write a prefix (a *torn* record) and raise
  :class:`ChaosKill`, simulating ``SIGKILL``/power loss at that exact byte.
  ``ChaosKill`` subclasses ``BaseException`` so it punches through every
  ``except Exception`` / ``except OSError`` recovery path exactly the way
  real process death would — the test harness catches it at top level,
  abandons the instance, and restarts on the same store.

Faults are *positional* — the N-th call of an op kind — and
:class:`ChaosFileOps` logs every intercepted call, so a test can first run
a scenario clean to enumerate the fault points, then replay it once per
point per mode.  Everything is deterministic given the scenario and the
fault plan; the chaos matrix derives tear offsets from a seeded RNG and
logs the seed, so any failure reproduces from the log line.

The module also carries the raw-socket HTTP fault clients (truncated POST,
slow-loris) used to harden the service API — kept here so future PRs share
one misbehaving-client vocabulary.
"""

from __future__ import annotations

import errno
import json
import os
import socket
from dataclasses import dataclass
from pathlib import Path
from typing import IO

#: Dir-fsync failures that mean "this platform/filesystem cannot fsync a
#: directory", which is fine to ignore.  Anything else — EIO, ENOSPC — is a
#: real durability failure and MUST propagate (an earlier revision swallowed
#: all ``OSError`` here, which made the store's durability claims dishonest).
_DIR_FSYNC_UNSUPPORTED = frozenset(
    code
    for code in (
        getattr(errno, "ENOTSUP", None),
        getattr(errno, "EOPNOTSUPP", None),
        errno.EBADF,
        errno.EINVAL,
        getattr(errno, "ENOSYS", None),
    )
    if code is not None
)


class ChaosKill(BaseException):
    """Simulated process death at an exact I/O instant.

    ``BaseException`` on purpose: degradation handlers catch ``OSError`` /
    ``Exception``, and a real ``SIGKILL`` gives them no chance to run — so
    neither does this.  Only the chaos harness catches it.
    """


@dataclass(frozen=True)
class Fault:
    """One injected fault: the *index*-th call of *op* misbehaves.

    ``op`` is one of ``"open"``, ``"write"``, ``"fsync"``, ``"replace"``,
    ``"fsync_dir"``.  ``mode``:

    * ``"error"`` — raise ``OSError(error)`` before touching the file;
    * ``"short"`` (write only) — write ``tear_at`` bytes of the payload,
      then raise ``OSError(error)``;
    * ``"kill"`` — for writes, land ``tear_at`` bytes then raise
      :class:`ChaosKill`; for other ops, raise it before acting.

    Faults fire once: after firing they are spent, so recovery I/O (e.g.
    recording the ``DEGRADED`` transition) sees a healthy disk again.
    """

    op: str
    index: int
    mode: str = "error"
    error: int = errno.ENOSPC
    tear_at: int | None = None


class FileOps:
    """The narrow I/O seam durable writers call instead of ``os``/``open``.

    Methods mirror exactly the operations the journals and the store
    perform; reads stay direct (corruption of what is *on disk already* is
    the corruption fuzzers' job, not this seam's).
    """

    def open(self, path: Path | str, mode: str) -> IO[bytes]:
        return open(path, mode)

    def write(self, handle: IO[bytes], data: bytes) -> None:
        handle.write(data)

    def fsync(self, handle: IO[bytes]) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: Path | str, dst: Path | str) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: Path | str) -> None:
        """Fsync a directory so a just-created/renamed entry is durable.

        Open/fsync failures meaning "unsupported here" (ENOTSUP, EBADF,
        EINVAL, ENOSYS) are ignored; real I/O failures propagate.
        """
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError as exc:
            if exc.errno in _DIR_FSYNC_UNSUPPORTED:
                return
            raise
        try:
            os.fsync(fd)
        except OSError as exc:
            if exc.errno in _DIR_FSYNC_UNSUPPORTED:
                return
            raise
        finally:
            os.close(fd)

    def disk_free(self, path: Path | str) -> int:
        """Free bytes available to unprivileged writers under *path* (the
        admission controller's load-shedding signal)."""
        stats = os.statvfs(path)
        return stats.f_bavail * stats.f_frsize


#: The production seam: shared, stateless, allocation-free.
REAL_FILEOPS = FileOps()


class ChaosFileOps(FileOps):
    """A :class:`FileOps` that misbehaves on schedule (see module docstring).

    ``armed=False`` lets a scenario set itself up (submissions, store
    creation) over a healthy disk, then :meth:`arm` the plan right before
    the phase under test — fault indices count only armed calls, so the
    enumeration run and the injection runs line up call-for-call.

    ``free_bytes`` (when not ``None``) overrides :meth:`disk_free`, so
    load-shedding tests can fake a nearly full disk without filling one.
    """

    def __init__(
        self,
        faults: tuple[Fault, ...] | list[Fault] = (),
        *,
        armed: bool = True,
        free_bytes: int | None = None,
    ) -> None:
        self.faults = list(faults)
        self.armed = armed
        self.free_bytes = free_bytes
        #: Armed calls so far, per op kind (fault indices count these).
        self.counts: dict[str, int] = {}
        #: Every armed intercepted call, in order: ``(op, path)``.
        self.ops: list[tuple[str, str]] = []
        #: Faults that have fired (spent), in firing order.
        self.fired: list[Fault] = []

    def arm(self) -> None:
        self.armed = True

    def _intercept(self, op: str, path: object) -> Fault | None:
        if not self.armed:
            return None
        index = self.counts.get(op, 0)
        self.counts[op] = index + 1
        self.ops.append((op, str(path)))
        for fault in self.faults:
            if fault not in self.fired and fault.op == op and fault.index == index:
                self.fired.append(fault)
                return fault
        return None

    def _raise(self, fault: Fault, detail: str) -> None:
        if fault.mode == "kill":
            raise ChaosKill(f"chaos kill during {detail}")
        raise OSError(fault.error, f"{os.strerror(fault.error)} [chaos {detail}]")

    # -- intercepted ops -----------------------------------------------------

    def open(self, path: Path | str, mode: str) -> IO[bytes]:
        fault = self._intercept("open", path)
        if fault is not None:
            self._raise(fault, f"open {path}")
        return super().open(path, mode)

    def write(self, handle: IO[bytes], data: bytes) -> None:
        fault = self._intercept("write", getattr(handle, "name", "?"))
        if fault is None:
            return super().write(handle, data)
        if fault.mode in ("short", "kill"):
            tear = fault.tear_at
            if tear is None:
                tear = len(data) // 2
            torn = data[: max(0, min(tear, len(data)))]
            if torn:
                super().write(handle, torn)
                handle.flush()  # the torn prefix really lands on disk
        self._raise(fault, f"write {getattr(handle, 'name', '?')}")

    def fsync(self, handle: IO[bytes]) -> None:
        fault = self._intercept("fsync", getattr(handle, "name", "?"))
        if fault is not None:
            handle.flush()  # data reached the OS; durability is what failed
            self._raise(fault, f"fsync {getattr(handle, 'name', '?')}")
        super().fsync(handle)

    def replace(self, src: Path | str, dst: Path | str) -> None:
        fault = self._intercept("replace", dst)
        if fault is not None:
            self._raise(fault, f"replace {dst}")
        super().replace(src, dst)

    def fsync_dir(self, path: Path | str) -> None:
        fault = self._intercept("fsync_dir", path)
        if fault is not None:
            self._raise(fault, f"fsync_dir {path}")
        super().fsync_dir(path)

    def disk_free(self, path: Path | str) -> int:
        if self.free_bytes is not None:
            return self.free_bytes
        return super().disk_free(path)


# -- misbehaving HTTP clients (raw sockets; shared by tests and CI) ----------


def _read_http_status(sock: socket.socket) -> tuple[int, bytes]:
    """Minimal response parse: the status code plus whatever body bytes the
    server sent before closing (enough for asserting structured errors)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            break
        data += chunk
    if not data:
        return 0, b""
    head, _, rest = data.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0]
    try:
        status = int(status_line.split()[1])
    except (IndexError, ValueError):
        return 0, b""
    while True:
        try:
            chunk = sock.recv(65536)
        except OSError:
            break
        if not chunk:
            break
        rest += chunk
    return status, rest


def truncated_post(
    host: str,
    port: int,
    path: str,
    payload: dict,
    *,
    send_bytes: int,
    extra_declared: int = 0,
    timeout: float = 10.0,
) -> tuple[int, bytes]:
    """POST whose ``Content-Length`` promises more than the wire delivers.

    Sends only ``send_bytes`` of the encoded body (and optionally inflates
    the declared length by ``extra_declared``), then half-closes the write
    side — the classic truncated upload.  Returns ``(status, body_bytes)``;
    a hardened server answers 400 instead of hanging or raising a 500.
    """
    body = json.dumps(payload).encode("utf-8")
    declared = len(body) + max(0, extra_declared)
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {declared}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("ascii")
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head + body[: max(0, send_bytes)])
        sock.shutdown(socket.SHUT_WR)
        return _read_http_status(sock)


def slow_loris_post(
    host: str,
    port: int,
    path: str,
    *,
    declared_length: int = 64,
    timeout: float = 10.0,
) -> tuple[int, bytes]:
    """A slow-loris body: headers promise a body that never finishes.

    Sends the headers plus a single body byte, then just waits.  A hardened
    server times the read out and answers 408 (closing the connection)
    instead of pinning a handler thread forever.  ``timeout`` bounds how
    long this *client* waits for that answer.
    """
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {declared_length}\r\n\r\n"
    ).encode("ascii")
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(head + b"{")
        return _read_http_status(sock)
