"""Fault-tolerant reduction: a supervised, flake-hardened, journaled wrapper
pipeline around the delta-debugging loop (beyond the paper; ReduKtor-style).

The paper's "almost free" reduction (§3.4, Theorem 2.6) holds only while the
interestingness test behaves.  In production it does not: a hung probe
freezes the reducer, a hard crash loses every accepted chunk, and a flaky
verdict silently breaks the 1-minimality guarantee — it can even *accept* a
removal the bug does not survive, returning a "reduced" sequence that is not
interesting at all.  This module gives the reducer the same fault envelope
the campaign phase got in the robustness layer:

* **Supervised probes** — candidate probes route through the harness's
  :class:`~repro.robustness.supervisor.SupervisedTarget` (child process,
  wall-clock timeout, ``RLIMIT_AS`` cap).  A probe-level fault (timeout /
  OOM / worker death) is retried with the shared backoff policy and, once
  the ``fault_retries`` budget is spent, counts as *not interesting* —
  never as acceptance.  Each supervised probe's timeout is additionally
  clamped to ``min(probe_timeout, remaining reduction budget)``, closing
  the gap where :func:`~repro.core.reducer.reduce_transformations` only
  checks its deadline *between* candidates.
* **Flake-hardened oracle** — :class:`FlakeHardenedOracle` votes instead of
  trusting single probes where it matters: a removal is accepted only after
  ``accept_votes`` unanimous probes (a wrong acceptance corrupts the
  result; a wrong rejection merely costs minimality), and once any
  disagreement has been observed, rejections are double-checked by a
  best-of-``reject_votes`` majority.  The accounting lands in
  ``ReductionResult.stability``.
* **Journal + resume** — every decision is appended to a
  :class:`~repro.robustness.journal.ReductionJournal` (fsync per line), so
  a reduction killed mid-round resumes to a byte-identical result and
  journal; composes with the perf layer's replay-prefix cache.
* **Graceful degradation** — budget exhaustion, a persistently unresponsive
  target, or an oracle-infrastructure failure returns the best-so-far
  subsequence with a structured ``degraded`` reason instead of raising,
  and emits ``reduce.fault`` / ``reduce.degraded`` tracer events plus
  metrics counters so ``repro-report`` shows reduction fault totals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple, Sequence

from repro.core.reducer import ReductionResult, reduce_transformations
from repro.observability import as_tracer
from repro.robustness.config import ReductionPolicy
from repro.robustness.journal import ReductionJournal
from repro.robustness.retry import DecorrelatedJitter, backoff_sleep


class ProbeVerdict(NamedTuple):
    """One raw oracle probe: the verdict plus any probe-level fault.

    ``fault`` is an :class:`~repro.compilers.base.OutcomeKind` value string
    (``"timeout"`` / ``"resource"`` / ``"worker-crash"``) when the probe
    misbehaved as a *process*; ``None`` for a clean verdict.  A probe whose
    fault kind *is* the finding's bug (reducing a ``timeout`` finding, say)
    reports ``interesting=True`` with ``fault=None`` — the fault is the
    signal there, not noise.
    """

    interesting: bool
    fault: str | None = None


#: A verdict test maps a candidate subsequence to a :class:`ProbeVerdict`.
VerdictTest = Callable[[Sequence], "ProbeVerdict"]


class ReductionAborted(RuntimeError):
    """Raised internally when the oracle gives up on the target; callers of
    :func:`reduce_with_faults` never see it — it degrades to best-so-far."""

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason
        self.detail = detail


@dataclass
class OracleStability:
    """Work and flakiness accounting for one fault-tolerant reduction."""

    probes: int = 0  #: raw verdict-test invocations (votes and retries included)
    escalation_probes: int = 0  #: probes beyond the first per candidate
    fault_retries: int = 0  #: probes re-run after a supervision fault
    disagreements: int = 0  #: votes that contradicted an earlier probe
    faulted_candidates: int = 0  #: candidates rejected on fault-budget exhaustion
    journal_hits: int = 0  #: decisions replayed from a resumed journal
    escalated: bool = False  #: a disagreement switched rejections to voting
    faults: dict[str, int] = field(default_factory=dict)  #: fault kind -> count

    @property
    def fault_total(self) -> int:
        return sum(self.faults.values())

    def count_fault(self, kind: str) -> None:
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def to_json(self) -> dict:
        """The accounting attached to ``ReductionResult.stability``.

        ``journal_hits`` is deliberately excluded: a resumed run replays
        decisions from the journal instead of re-probing, so the hit count
        is the one counter that *legitimately* differs between a resumed
        and an uninterrupted reduction — everything else (probes, votes,
        faults, disagreements) is folded back from the journal records and
        matches exactly.
        """
        return {
            "probes": self.probes,
            "escalation_probes": self.escalation_probes,
            "fault_retries": self.fault_retries,
            "disagreements": self.disagreements,
            "faulted_candidates": self.faulted_candidates,
            "escalated": self.escalated,
            "faults": dict(sorted(self.faults.items())),
        }


class FlakeHardenedOracle:
    """An :data:`~repro.core.reducer.InterestingnessTest` that survives
    faulty and flaky verdict tests.

    The oracle is handed to the unmodified delta-debugging loop; per
    candidate it runs the adaptive probe/vote/retry pipeline described in
    the module docstring, memoizes the final decision by candidate content
    (so the reducer's repeated candidates stay deterministic *and* free),
    journals every fresh decision, and keeps enough bookkeeping —
    ``best``, ``calls``, ``removals`` — to synthesise a best-so-far
    :class:`~repro.core.reducer.ReductionResult` if the run must degrade.
    """

    def __init__(
        self,
        verdict_test: VerdictTest,
        policy: ReductionPolicy,
        *,
        journal: ReductionJournal | None = None,
        resume_records: dict[str, dict] | None = None,
        supervised_target: Any = None,
        tracer: Any = None,
        metrics: Any = None,
        replay_stats: Any = None,
        key_fn: Callable[[Sequence], str] | None = None,
    ) -> None:
        self._test = verdict_test
        self.policy = policy
        self.journal = journal
        #: Candidate -> journal/memo key.  The pass pipeline injects a
        #: pass-scoped key function so decisions from different passes never
        #: collide in a shared journal.
        self._key = key_fn or ReductionJournal.candidate_key
        self._resume = dict(resume_records or {})
        self._target = supervised_target
        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        self._stats = replay_stats  # a perf ReplayStats, shared with the replayer
        self.stability = OracleStability()
        #: Fault-retry backoff jitter (None = deterministic exponential).
        #: Seeded per policy, so identical runs sleep identically — only the
        #: *fleet-wide alignment* of sleeps is broken, never reproducibility.
        self._jitter = (
            DecorrelatedJitter(
                policy.retry_backoff, seed=policy.retry_jitter_seed
            )
            if policy.retry_jitter_seed is not None
            else None
        )
        self._memo: dict[str, bool] = {}
        self._accepted: set[str] = set()
        self._escalated = False
        self._fault_streak = 0
        #: Wall-clock deadline (monotonic); supervised probe timeouts are
        #: clamped to what remains of it.
        self.deadline: float | None = None
        #: Set by the pipeline so the verify probe is not counted as a removal.
        self.initial_length: int | None = None
        self.calls = 0  #: interestingness queries (mirrors the reducer's tests_run)
        self.best: list | None = None  #: last accepted candidate (best-so-far)
        self.removals = 0  #: accepted candidates shorter than the input
        self.last_verdict_faulted = False  #: last decision fell to the fault budget

    # -- InterestingnessTest surface ----------------------------------------------

    def __call__(self, candidate: Sequence) -> bool:
        self.calls += 1
        if self._stats is not None:
            self._stats.requests += 1
        key = self._key(candidate)
        self.last_verdict_faulted = False
        if key in self._memo:
            if self._stats is not None:
                self._stats.memo_hits += 1
            verdict = self._memo[key]
        else:
            record = self._resume.pop(key, None)
            if record is not None:
                verdict = self._restore(record)
            else:
                verdict, record = self._decide(candidate)
                record["key"] = key
                record["n"] = len(candidate)
                if self.journal is not None:
                    self.journal.append(record)
            self._memo[key] = verdict
        if verdict:
            self._note_accept(key, candidate)
        return verdict

    def verify(self, sequence: Sequence) -> bool:
        """Decide the full input sequence with escalated (voted) scrutiny.

        Wrongly rejecting the input aborts the whole reduction, so the
        verify probe gets the same protection an acceptance does — without
        flipping the oracle into sticky escalated mode.
        """
        self.calls += 1
        if self._stats is not None:
            self._stats.requests += 1
        key = self._key(sequence)
        self.last_verdict_faulted = False
        record = self._resume.pop(key, None)
        if record is not None:
            verdict = self._restore(record)
        else:
            verdict, record = self._decide(sequence, mode="verify")
            record["key"] = key
            record["n"] = len(sequence)
            if self.journal is not None:
                self.journal.append(record)
        self._memo[key] = verdict
        if verdict:
            self._note_accept(key, sequence)
        return verdict

    # -- decision pipeline ---------------------------------------------------------

    def _decide(self, candidate: Sequence, *, mode: str = "candidate") -> tuple[bool, dict]:
        record = {
            "v": 1,
            "verdict": False,
            "probes": 0,
            "escalations": 0,
            "fault_retries": 0,
            "disagreements": 0,
            "faults": {},
            "faulted": False,
        }
        if mode == "verify":
            # Wrongly rejecting the input aborts the whole reduction (and a
            # wrongly *accepted* non-interesting input merely fails to shrink
            # — every removal gets rejected — which is safe), so the verify
            # probe is decided by a best-of-N majority, not unanimity.
            verdict = self._majority(candidate, record)
            if verdict is None:
                verdict = False
                record["faulted"] = True
                self.stability.faulted_candidates += 1
                self.last_verdict_faulted = True
        else:
            first = self._probe(candidate, record, escalation=False)
            verdict = False
            if first is None:
                record["faulted"] = True
                self.stability.faulted_candidates += 1
                self.last_verdict_faulted = True
            elif first or self._escalated:
                verdict = self._vote(candidate, record, first)
        record["verdict"] = verdict
        return verdict, record

    def _majority(self, candidate: Sequence, record: dict) -> bool | None:
        """Best-of-``reject_votes`` majority; ``None`` when *every* probe
        fell to the fault budget (pure infrastructure failure)."""
        majority = max(1, self.policy.reject_votes) // 2 + 1
        trues = falses = clean = 0
        while trues < majority and falses < majority:
            vote = self._probe(
                candidate, record, escalation=(trues + falses) > 0
            )
            if vote is None:
                falses += 1  # a faulted probe can never vote "interesting"
            else:
                clean += 1
                if vote:
                    trues += 1
                else:
                    falses += 1
        if clean == 0:
            return None
        if trues and falses:
            self._disagree(record)
        return trues >= majority

    def _vote(self, candidate: Sequence, record: dict, first: bool) -> bool:
        # Rejection rescue (escalated mode only): the first probe said "not
        # interesting", but the oracle has already been caught lying — take a
        # best-of-N majority before giving up on the removal.
        if not first:
            majority = max(1, self.policy.reject_votes) // 2 + 1
            trues, falses = 0, 1
            while trues < majority and falses < majority:
                vote = self._probe(candidate, record, escalation=True)
                if vote:
                    trues += 1
                else:  # a fault-budgeted probe (None) votes "not interesting"
                    falses += 1
            if falses >= majority:
                return False
            self._disagree(record)  # the initial rejection was outvoted
        # Acceptance confirmation: the initial True (or the rescue majority)
        # plus accept_votes-1 unanimous confirmations.  Any dissent — or any
        # fault — rejects: a false rejection only costs minimality, a false
        # acceptance corrupts the result.
        for _ in range(max(1, self.policy.accept_votes) - 1):
            vote = self._probe(candidate, record, escalation=True)
            if vote is None:
                return False
            if not vote:
                self._disagree(record)
                return False
        return True

    def _probe(
        self, candidate: Sequence, record: dict, *, escalation: bool
    ) -> bool | None:
        """One logical probe with fault retries.

        Returns the clean verdict, or ``None`` when the fault-retry budget
        is exhausted (never acceptance).  Raises :class:`ReductionAborted`
        once ``unresponsive_after`` consecutive probes have faulted.
        """
        for attempt in range(max(0, self.policy.fault_retries) + 1):
            backoff_sleep(attempt, self.policy.retry_backoff, jitter=self._jitter)
            if attempt:
                record["fault_retries"] += 1
                self.stability.fault_retries += 1
            self._clamp_probe_timeout()
            verdict = self._test(candidate)
            record["probes"] += 1
            self.stability.probes += 1
            if escalation:
                record["escalations"] += 1
                self.stability.escalation_probes += 1
            if verdict.fault is None:
                self._fault_streak = 0
                return bool(verdict.interesting)
            self._fault_streak += 1
            record["faults"][verdict.fault] = record["faults"].get(verdict.fault, 0) + 1
            self.stability.count_fault(verdict.fault)
            if self.metrics is not None:
                self.metrics.inc("reduce.faults")
                self.metrics.inc(f"reduce.faults.{verdict.fault}")
            if self.tracer.enabled:
                self.tracer.emit(
                    "reduce.fault",
                    kind=verdict.fault,
                    attempt=attempt,
                    candidate_length=len(candidate),
                    streak=self._fault_streak,
                )
            if (
                self.policy.unresponsive_after is not None
                and self._fault_streak >= self.policy.unresponsive_after
            ):
                raise ReductionAborted(
                    "target-unresponsive",
                    f"{self._fault_streak} consecutive probe faults "
                    f"(last: {verdict.fault})",
                )
        return None

    def _disagree(self, record: dict) -> None:
        record["disagreements"] += 1
        self.stability.disagreements += 1
        if not self._escalated:
            self._escalated = True
            self.stability.escalated = True

    def _restore(self, record: dict) -> bool:
        """Fold a journaled decision's accounting back into this run."""
        s = self.stability
        s.journal_hits += 1
        s.probes += record.get("probes", 0)
        s.escalation_probes += record.get("escalations", 0)
        s.fault_retries += record.get("fault_retries", 0)
        s.disagreements += record.get("disagreements", 0)
        for kind, count in (record.get("faults") or {}).items():
            s.faults[kind] = s.faults.get(kind, 0) + count
        if record.get("faulted"):
            s.faulted_candidates += 1
            self.last_verdict_faulted = True
        if record.get("disagreements"):
            self._escalated = True
            s.escalated = True
        return bool(record["verdict"])

    def _note_accept(self, key: str, candidate: Sequence) -> None:
        if key in self._accepted:
            return  # a memo re-hit of an already accepted candidate
        self._accepted.add(key)
        if self.best is None:
            self.best = list(candidate)
        if self.initial_length is not None and len(candidate) >= self.initial_length:
            return  # the verify probe is not a removal
        if len(candidate) <= len(self.best):
            self.best = list(candidate)
        self.removals += 1

    def _clamp_probe_timeout(self) -> None:
        if self._target is None:
            return
        if self.deadline is None:
            self._target.set_timeout_override(None)
            return
        remaining = self.deadline - time.monotonic()
        self._target.set_timeout_override(max(0.001, remaining))


def _absorb_worker_record(
    oracle: FlakeHardenedOracle, key: str, length: int, record: dict
) -> bool:
    """Fold a worker-produced decision record into the parent oracle at
    commit time: the parent-side half of a decision the worker's own
    :meth:`FlakeHardenedOracle._decide` already made.

    Mirrors what the serial pipeline does as it probes — stability
    accounting, fault metrics/tracer events, journaling, memoization —
    so the parent's stability, journal, and report are identical to a
    serial run's on a deterministic oracle.  (``journal_hits`` stays
    untouched: the decision was computed this run, not replayed.)
    """
    s = oracle.stability
    s.probes += record.get("probes", 0)
    s.escalation_probes += record.get("escalations", 0)
    s.fault_retries += record.get("fault_retries", 0)
    s.disagreements += record.get("disagreements", 0)
    for kind, count in (record.get("faults") or {}).items():
        s.faults[kind] = s.faults.get(kind, 0) + count
        if oracle.metrics is not None:
            oracle.metrics.inc("reduce.faults", count)
            oracle.metrics.inc(f"reduce.faults.{kind}", count)
        if oracle.tracer.enabled:
            for _ in range(count):
                oracle.tracer.emit(
                    "reduce.fault", kind=kind, candidate_length=length
                )
    if record.get("faulted"):
        s.faulted_candidates += 1
        oracle.last_verdict_faulted = True
    if record.get("disagreements"):
        oracle._escalated = True
        s.escalated = True
    record["key"] = key
    record["n"] = length
    if oracle.journal is not None:
        oracle.journal.append(record)
    return bool(record["verdict"])


def _apply_degradation(
    result: ReductionResult,
    oracle: FlakeHardenedOracle,
    degraded: str | None,
    detail: str,
    tracer: Any,
    metrics: Any,
) -> ReductionResult:
    """The shared pipeline tail: attach ``degraded``/``stability`` and emit
    the degradation metrics + tracer event."""
    if result.timed_out and degraded is None:
        degraded = "budget-exhausted"
    result.degraded = degraded
    result.stability = oracle.stability.to_json()
    if degraded is not None:
        if metrics is not None:
            metrics.inc("reduce.degraded")
            metrics.inc(f"reduce.degraded.{degraded.split(':', 1)[0]}")
        tracer.emit(
            "reduce.degraded",
            reason=degraded,
            detail=detail,
            initial_length=result.initial_length,
            final_length=result.final_length,
            faults=oracle.stability.fault_total,
        )
    return result


def _best_effort(oracle: FlakeHardenedOracle, sequence: list) -> ReductionResult:
    """A valid (every accepted candidate passed the oracle) but possibly
    non-minimal result, synthesised from the oracle's bookkeeping when the
    reducer itself could not run to completion."""
    best = oracle.best if oracle.best is not None else list(sequence)
    return ReductionResult(
        transformations=list(best),
        tests_run=oracle.calls,
        chunks_removed=oracle.removals,
        initial_length=len(sequence),
    )


class SpeculativeFaultReduction:
    """The fault-tolerant pipeline running over the speculative parallel
    engine (:mod:`repro.perf.parallel_reduce`).

    Construction performs the serial pipeline's head — journal prepare,
    parent oracle, escalated input verification — in the parent process;
    candidate *decisions* then run inside pool workers (each owning a fresh
    oracle over its own supervised target and replayer), and the parent
    folds each committed decision back through :func:`_absorb_worker_record`
    in serial scan order.  The journal-resume lookup is read-only at
    dispatch time and consumed only at commit, so speculative candidates
    that are later discarded leave no trace in the oracle, the stability
    accounting, or the journal — all three stay byte-identical to a serial
    run's on a deterministic oracle.
    """

    def __init__(
        self,
        transformations: Sequence,
        verdict_test: VerdictTest,
        policy: ReductionPolicy | None = None,
        *,
        journal: "ReductionJournal | str | None" = None,
        resume: bool = False,
        supervised_target: Any = None,
        tracer: Any = None,
        metrics: Any = None,
        replay_stats: Any = None,
        workers: int = 2,
        window: int | None = None,
        pool_key: str = "reduction",
        oracle: "FlakeHardenedOracle | None" = None,
        verify: bool = True,
    ) -> None:
        from repro.perf.parallel_reduce import (
            SpeculativeReduction,
            SpeculativeSession,
        )

        self.tracer = as_tracer(tracer)
        self.metrics = metrics
        self.sequence = sequence = list(transformations)
        self.supervised_target = supervised_target
        self._verified = verify
        if oracle is None:
            self.policy = policy = policy or ReductionPolicy()
            if journal is not None and not isinstance(journal, ReductionJournal):
                journal = ReductionJournal(journal)
            resume_records: dict[str, dict] = {}
            if journal is not None:
                resume_records = journal.prepare(
                    ReductionJournal.candidate_key(sequence),
                    len(sequence),
                    resume=resume,
                )
            oracle = FlakeHardenedOracle(
                verdict_test,
                policy,
                journal=journal,
                resume_records=resume_records,
                supervised_target=supervised_target,
                tracer=self.tracer,
                metrics=metrics,
                replay_stats=replay_stats,
            )
            oracle.initial_length = len(sequence)
            if policy.max_seconds is not None:
                oracle.deadline = time.monotonic() + policy.max_seconds
        else:
            # An externally managed oracle (the pass pipeline's): journal
            # prepare, deadline, and initial_length are the caller's
            # responsibility, and the input has already been verified.
            self.policy = policy = oracle.policy
        self.oracle = oracle
        self.degraded: str | None = None
        self.detail = ""
        self.result: ReductionResult | None = None
        self.session = None
        if verify:
            try:
                if not oracle.verify(sequence):
                    if oracle.last_verdict_faulted:
                        self.degraded = "verify-faulted"
                        self.result = _best_effort(oracle, sequence)
                    else:
                        raise ValueError(
                            "the full transformation sequence is not interesting"
                        )
            except ReductionAborted as abort:
                self.degraded = abort.reason
                self.detail = abort.detail
                self.result = _best_effort(oracle, sequence)
            except ValueError:
                raise
            except Exception as exc:  # noqa: BLE001 - degrade, like the serial path
                self.degraded = f"oracle-error: {type(exc).__name__}"
                self.detail = str(exc)
                self.result = _best_effort(oracle, sequence)
        if self.result is not None:
            return
        engine = SpeculativeReduction(
            sequence,
            window=window if window is not None else max(1, workers) * 4,
            lookup=self._lookup,
            on_commit=self._on_commit,
            tracer=self.tracer,
            deadline=oracle.deadline,
        )
        engine.stats.workers = workers
        engine.stats.mode = "pool"
        self.session = SpeculativeSession(
            pool_key, engine, decide=True, deadline=oracle.deadline
        )

    # -- engine hooks ------------------------------------------------------------

    def _lookup(self, candidate: list, _cand: Any) -> tuple | None:
        """Journal-resume / memo short-circuit: resolve without dispatching.
        Must not mutate — the candidate may never commit."""
        key = self.oracle._key(candidate)
        record = self.oracle._resume.get(key)
        if record is not None:
            return bool(record["verdict"]), record, "journal"
        if key in self.oracle._memo:
            # A repeat candidate (the pass pipeline re-running ddmin after
            # another pass changed the sequence): the decision is already
            # settled, so skip the worker round-trip.  ``_on_commit`` takes
            # its memo branch, exactly as a dispatched repeat would.
            return self.oracle._memo[key], None, "memo"
        return None

    def _on_commit(
        self, candidate: list, verdict: bool, record: dict | None, source: str
    ) -> bool:
        """Fold one committed decision into the parent oracle, exactly as the
        serial oracle's ``__call__`` would have: memo first (duplicate-content
        candidates can be in flight simultaneously — the repeat pass
        regenerates them — and only the first may journal), then resumed
        journal records, then fresh worker records."""
        oracle = self.oracle
        oracle.calls += 1
        if oracle._stats is not None:
            oracle._stats.requests += 1
        key = oracle._key(candidate)
        oracle.last_verdict_faulted = False
        if key in oracle._memo:
            if oracle._stats is not None:
                oracle._stats.memo_hits += 1
            verdict = oracle._memo[key]
        elif source == "journal":
            oracle._resume.pop(key, None)
            verdict = oracle._restore(record)
            oracle._memo[key] = verdict
        else:
            if record is not None and "aborted" in record:
                raise ReductionAborted(*record["aborted"])
            verdict = _absorb_worker_record(oracle, key, len(candidate), record)
            oracle._memo[key] = verdict
        if verdict:
            oracle._note_accept(key, candidate)
        return verdict

    # -- completion --------------------------------------------------------------

    def finalize(self) -> ReductionResult:
        """Collect the result after :func:`~repro.perf.parallel_reduce.
        run_sessions` has drained the session (or immediately, when the
        pipeline degraded before the engine started)."""
        oracle = self.oracle
        try:
            if self.result is None:
                error = self.session.error
                if error is not None:
                    if isinstance(error, ReductionAborted):
                        self.degraded = error.reason
                        self.detail = error.detail
                    else:
                        original = getattr(error, "original_type", None)
                        self.degraded = (
                            f"oracle-error: {original or type(error).__name__}"
                        )
                        self.detail = str(error)
                    self.result = _best_effort(oracle, self.sequence)
                else:
                    self.result = self.session.engine.result(
                        verify_tests=1 if self._verified else 0
                    )
        finally:
            if self.supervised_target is not None:
                self.supervised_target.set_timeout_override(None)
        return _apply_degradation(
            self.result, oracle, self.degraded, self.detail, self.tracer, self.metrics
        )


def _parallel_reduce_with_faults(
    transformations: Sequence,
    verdict_test: VerdictTest,
    policy: ReductionPolicy | None,
    *,
    journal,
    resume: bool,
    supervised_target: Any,
    tracer: Any,
    metrics: Any,
    replay_stats: Any,
    workers: int,
    window: int | None,
    pool: Any,
    pool_key: str,
    oracle: "FlakeHardenedOracle | None" = None,
    verify: bool = True,
) -> ReductionResult:
    from repro.perf.parallel_reduce import run_sessions
    from repro.perf.reduce_pool import CallableProbeSpec, ReductionPool

    owns_pool = False
    if pool is None:
        from dataclasses import replace as dc_replace

        spec_policy = policy or ReductionPolicy()
        if spec_policy.max_seconds is not None:
            # Workers decide single candidates; the wall-clock budget is the
            # parent's to enforce (deadline-bounded waits + finish_timed_out).
            spec_policy = dc_replace(spec_policy, max_seconds=None)
        spec = CallableProbeSpec(
            test=verdict_test,
            items=tuple(transformations),
            decide=True,
            policy=spec_policy,
        )
        if not ReductionPool.shippable(spec):
            return None  # caller falls back to the serial pipeline
        pool = ReductionPool({pool_key: spec}, workers)
        owns_pool = True
    try:
        reduction = SpeculativeFaultReduction(
            transformations,
            verdict_test,
            policy,
            journal=journal,
            resume=resume,
            supervised_target=supervised_target,
            tracer=tracer,
            metrics=metrics,
            replay_stats=replay_stats,
            workers=workers,
            window=window,
            pool_key=pool_key,
            oracle=oracle,
            verify=verify,
        )
        if reduction.session is not None:
            run_sessions(pool, [reduction.session])
        return reduction.finalize()
    finally:
        if owns_pool:
            pool.close()


def reduce_with_faults(
    transformations: Sequence,
    verdict_test: VerdictTest,
    policy: ReductionPolicy | None = None,
    *,
    journal: "ReductionJournal | str | None" = None,
    resume: bool = False,
    supervised_target: Any = None,
    tracer: Any = None,
    metrics: Any = None,
    replay_stats: Any = None,
    workers: int = 1,
    window: int | None = None,
    pool: Any = None,
    pool_key: str = "reduction",
    oracle: "FlakeHardenedOracle | None" = None,
    verify: bool = True,
) -> ReductionResult:
    """Delta-debug *transformations* through the fault-tolerant pipeline.

    Semantics on a deterministic, well-behaved target are identical to
    :func:`~repro.core.reducer.reduce_transformations` (same 1-minimal
    sequence, same ``tests_run`` / ``chunks_removed``); the extra machinery
    only changes what happens when the oracle hangs, dies, or lies.  The
    returned :class:`~repro.core.reducer.ReductionResult` carries the
    oracle's ``stability`` accounting and, when the run could not complete
    cleanly, a structured ``degraded`` reason:

    * ``"budget-exhausted"`` — ``policy.max_seconds`` ran out (best-so-far,
      still interesting, not guaranteed 1-minimal);
    * ``"verify-faulted"`` — the input-verification probe fell to the fault
      budget, so nothing could be tested at all (the input is returned);
    * ``"target-unresponsive"`` — ``policy.unresponsive_after`` consecutive
      probes faulted;
    * ``"oracle-error: <type>"`` — the verdict test itself raised (e.g. the
      supervisor machinery died); best-effort, never propagated.

    A genuinely non-interesting input still raises ``ValueError`` exactly as
    the raw reducer does — that is a caller bug, not a target fault.

    ``workers > 1`` (or an explicit *pool*) runs candidate decisions through
    the speculative parallel engine (:mod:`repro.perf.parallel_reduce`):
    verdicts commit in serial scan order, so the result *and* the journal
    are byte-identical to a serial run's for a deterministic oracle.  An
    oracle that cannot be shipped to worker processes (unpicklable and no
    ``fork``) silently falls back to the serial pipeline.

    An externally managed *oracle* (the pass pipeline's per-pass oracle) may
    be supplied together with ``verify=False``: journal preparation, input
    verification, deadline, and ``initial_length`` are then the caller's
    responsibility, and the oracle's memo/journal state carries over across
    invocations.
    """
    if workers > 1 or pool is not None:
        parallel = _parallel_reduce_with_faults(
            transformations,
            verdict_test,
            policy,
            journal=journal,
            resume=resume,
            supervised_target=supervised_target,
            tracer=tracer,
            metrics=metrics,
            replay_stats=replay_stats,
            workers=max(2, workers),
            window=window,
            pool=pool,
            pool_key=pool_key,
            oracle=oracle,
            verify=verify,
        )
        if parallel is not None:
            return parallel
    tracer = as_tracer(tracer)
    sequence = list(transformations)
    if oracle is None:
        policy = policy or ReductionPolicy()
        if journal is not None and not isinstance(journal, ReductionJournal):
            journal = ReductionJournal(journal)
        resume_records: dict[str, dict] = {}
        if journal is not None:
            resume_records = journal.prepare(
                ReductionJournal.candidate_key(sequence), len(sequence), resume=resume
            )
        oracle = FlakeHardenedOracle(
            verdict_test,
            policy,
            journal=journal,
            resume_records=resume_records,
            supervised_target=supervised_target,
            tracer=tracer,
            metrics=metrics,
            replay_stats=replay_stats,
        )
        oracle.initial_length = len(sequence)
        if policy.max_seconds is not None:
            oracle.deadline = time.monotonic() + policy.max_seconds
    else:
        policy = oracle.policy

    degraded: str | None = None
    detail = ""
    result: ReductionResult | None = None
    try:
        verified = True
        if verify and not oracle.verify(sequence):
            if oracle.last_verdict_faulted:
                degraded = "verify-faulted"
                result = _best_effort(oracle, sequence)
                verified = False
            else:
                raise ValueError(
                    "the full transformation sequence is not interesting"
                )
        if verified and result is None:
            remaining = None
            if oracle.deadline is not None:
                remaining = max(0.0, oracle.deadline - time.monotonic())
            result = reduce_transformations(
                sequence,
                oracle,
                verify_input=False,
                max_seconds=remaining,
                tracer=tracer,
            )
            if verify:
                result.tests_run += 1  # the verify probe above
    except ReductionAborted as abort:
        degraded = abort.reason
        detail = abort.detail
        result = _best_effort(oracle, sequence)
    except ValueError:
        raise
    except Exception as exc:  # noqa: BLE001 - best-effort degradation is the point
        degraded = f"oracle-error: {type(exc).__name__}"
        detail = str(exc)
        result = _best_effort(oracle, sequence)
    finally:
        if supervised_target is not None:
            supervised_target.set_timeout_override(None)

    return _apply_degradation(result, oracle, degraded, detail, tracer, metrics)
