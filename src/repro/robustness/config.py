"""Robustness knobs for fault-isolated campaigns (one picklable dataclass).

The config travels inside :class:`repro.perf.parallel.CampaignSpec`, so every
worker process rebuilds the same supervised targets, quarantine budget, and
retry policy the parent campaign uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RobustnessConfig:
    """How a harness should defend a campaign against misbehaving targets.

    The default config supervises nothing: probes run in-process exactly as
    before.  Setting ``probe_timeout`` or ``memory_limit_mb`` moves every
    target probe into a supervised child process (see
    :class:`repro.robustness.SupervisedTarget`).
    """

    #: Wall-clock bound per probe, in seconds.  ``None`` = unbounded (probes
    #: are still isolated in a child process if ``memory_limit_mb`` is set).
    probe_timeout: float | None = None
    #: Address-space cap for the probe worker, in MiB (``RLIMIT_AS``).  The
    #: worker maps allocation failure to an ``OutcomeKind.RESOURCE`` outcome.
    memory_limit_mb: int | None = None
    #: How many times to re-probe a finding to check its verdict is stable.
    #: Findings whose verdict changes across reruns are flagged
    #: ``nondeterministic`` so deduplication keeps them apart from stable bugs.
    retries: int = 0
    #: Base sleep between verdict-check reruns (doubles per attempt).
    retry_backoff: float = 0.05
    #: Seed for decorrelated retry jitter (see
    #: :class:`repro.robustness.retry.DecorrelatedJitter`); ``None`` keeps
    #: the deterministic exponential schedule.  Service fleets set a
    #: per-worker seed so simultaneous failures do not retry in lockstep.
    retry_jitter_seed: int | None = None
    #: Quarantine a target for the rest of the campaign once this many probe
    #: faults (timeout / resource / worker crash) are observed.  ``None``
    #: never quarantines.
    quarantine_after: int | None = None
    #: Skip (and roll back) a transformation whose ``Effect`` raises during
    #: fuzzing instead of aborting the whole seed.
    recover_effect_errors: bool = True
    #: Force supervision on/off; ``None`` = auto (supervise exactly when a
    #: timeout or memory bound is configured).
    supervise: bool | None = None

    @property
    def supervises(self) -> bool:
        if self.supervise is not None:
            return self.supervise
        return self.probe_timeout is not None or self.memory_limit_mb is not None


@dataclass(frozen=True)
class ReductionPolicy:
    """How :meth:`repro.core.harness.Harness.reduce_finding` defends the
    delta-debugging loop (see :mod:`repro.robustness.reduction`).

    The policy governs three independent defences:

    * **fault retries** — a probe whose verdict is a supervision fault
      (timeout / OOM / worker death) is retried up to ``fault_retries``
      times with the shared backoff discipline; once the budget is spent
      the candidate counts as *not interesting* — a fault can never accept
      a removal.
    * **flake-hardened voting** — a removal is accepted only after
      ``accept_votes`` unanimous probes; after the first observed
      disagreement, rejections are double-checked by a best-of-
      ``reject_votes`` majority so a flaky "no" cannot silently cost
      1-minimality either.
    * **degradation thresholds** — ``unresponsive_after`` consecutive
      faulted probes abort the loop with a best-so-far, ``degraded``
      result; ``max_seconds`` bounds the whole reduction's wall clock and
      clamps each supervised probe to the remaining budget.
    """

    #: Retries per probe after a supervision fault (0 = give up at once).
    fault_retries: int = 2
    #: Base sleep between fault retries (doubles per attempt, none before
    #: the first try — see :func:`repro.robustness.retry.backoff_sleep`).
    retry_backoff: float = 0.05
    #: Seed for decorrelated fault-retry jitter (``None`` = deterministic
    #: exponential).  The delay *sequence* is still reproducible per seed.
    retry_jitter_seed: int | None = None
    #: Unanimous probes required to *accept* a removal (1 = trust a single
    #: probe, as the raw reducer does).
    accept_votes: int = 2
    #: Best-of-N majority used to re-check *rejections* once a disagreement
    #: has been observed (flaky-oracle mode).
    reject_votes: int = 3
    #: Abort (degraded, best-so-far) after this many consecutive faulted
    #: probes; ``None`` keeps retrying forever.
    unresponsive_after: int | None = 6
    #: Wall-clock budget for the whole reduction; ``None`` = unbounded.
    max_seconds: float | None = None

    @classmethod
    def from_robustness(
        cls, config: "RobustnessConfig", *, max_seconds: float | None = None
    ) -> "ReductionPolicy":
        """The default reduction policy for a harness running with *config*:
        inherit the campaign's backoff, keep the voting defaults."""
        return cls(
            retry_backoff=config.retry_backoff,
            retry_jitter_seed=config.retry_jitter_seed,
            max_seconds=max_seconds,
        )
