"""Robustness knobs for fault-isolated campaigns (one picklable dataclass).

The config travels inside :class:`repro.perf.parallel.CampaignSpec`, so every
worker process rebuilds the same supervised targets, quarantine budget, and
retry policy the parent campaign uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RobustnessConfig:
    """How a harness should defend a campaign against misbehaving targets.

    The default config supervises nothing: probes run in-process exactly as
    before.  Setting ``probe_timeout`` or ``memory_limit_mb`` moves every
    target probe into a supervised child process (see
    :class:`repro.robustness.SupervisedTarget`).
    """

    #: Wall-clock bound per probe, in seconds.  ``None`` = unbounded (probes
    #: are still isolated in a child process if ``memory_limit_mb`` is set).
    probe_timeout: float | None = None
    #: Address-space cap for the probe worker, in MiB (``RLIMIT_AS``).  The
    #: worker maps allocation failure to an ``OutcomeKind.RESOURCE`` outcome.
    memory_limit_mb: int | None = None
    #: How many times to re-probe a finding to check its verdict is stable.
    #: Findings whose verdict changes across reruns are flagged
    #: ``nondeterministic`` so deduplication keeps them apart from stable bugs.
    retries: int = 0
    #: Base sleep between verdict-check reruns (doubles per attempt).
    retry_backoff: float = 0.05
    #: Quarantine a target for the rest of the campaign once this many probe
    #: faults (timeout / resource / worker crash) are observed.  ``None``
    #: never quarantines.
    quarantine_after: int | None = None
    #: Skip (and roll back) a transformation whose ``Effect`` raises during
    #: fuzzing instead of aborting the whole seed.
    recover_effect_errors: bool = True
    #: Force supervision on/off; ``None`` = auto (supervise exactly when a
    #: timeout or memory bound is configured).
    supervise: bool | None = None

    @property
    def supervises(self) -> bool:
        if self.supervise is not None:
            return self.supervise
        return self.probe_timeout is not None or self.memory_limit_mb is not None
