"""Verdict-stability reruns with backoff.

A target whose bug fires only sometimes (races, uninitialised memory) yields
findings that would pollute deduplication: two probes of the same test can
land in different signatures.  When a finding classifies, the harness
re-probes it up to ``retries`` times; if any rerun classifies differently
the finding is flagged ``nondeterministic`` and deduplication keeps it apart
from stable bugs.

The backoff discipline (shared with the fault-tolerant reducer's probe
retries, :mod:`repro.robustness.reduction`) is *between* attempts only: the
first try runs immediately, then successive retries sleep
``backoff * 2**(attempt-1)``.  Sleeping before the first attempt — as an
earlier revision did — taxed every stable finding for nothing.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.compilers.base import TargetOutcome


class DecorrelatedJitter:
    """Decorrelated-jitter backoff state (the AWS "decorrelated" variant).

    A fleet of workers that all fail together (dead target, restarting
    service) and all retry on the same deterministic exponential schedule
    will keep hammering the struggling dependency in lockstep.  Drawing each
    delay as ``uniform(base, 3 * previous_delay)``, capped at *cap*, spreads
    the retry storm out while keeping the expected growth exponential.

    The RNG is always *seeded* (default 0), so a test — or a resumed run —
    that rebuilds the jitter sees the same delay sequence: determinism is a
    hard requirement everywhere this repo sleeps.
    """

    def __init__(
        self, base: float, cap: float | None = None, seed: int | None = 0
    ) -> None:
        self.base = max(0.0, base)
        self.cap = cap if cap is not None else self.base * 32
        self._rng = random.Random(seed)
        self._previous = self.base

    def next(self) -> float:
        """The next delay; advances the jitter state."""
        if self.base <= 0:
            return 0.0
        self._previous = min(
            self.cap, self._rng.uniform(self.base, self._previous * 3)
        )
        return self._previous

    def reset(self) -> None:
        """Forget the failure streak (call after a success)."""
        self._previous = self.base


def backoff_sleep(
    attempt: int, backoff: float, *, jitter: DecorrelatedJitter | None = None
) -> None:
    """Sleep the backoff owed *before* 0-based *attempt*.

    ``attempt == 0`` (the first try) never sleeps; attempt ``k >= 1`` sleeps
    ``backoff * 2**(k-1)``.  With ``retries=1`` the single rerun therefore
    runs with zero added latency (regression-tested).

    With *jitter* (a :class:`DecorrelatedJitter`), each owed sleep is drawn
    from the jitter state instead of the deterministic exponential — used by
    the service watchdog and fleet-wide probe retries so simultaneous
    failures do not retry in lockstep.  The first attempt still never sleeps.
    """
    if backoff <= 0 or attempt <= 0:
        return
    if jitter is not None:
        delay = jitter.next()
    else:
        delay = backoff * (2 ** (attempt - 1))
    if delay > 0:
        time.sleep(delay)


def verdict_is_stable(
    probe: Callable[[], TargetOutcome],
    classify: Callable[[TargetOutcome], tuple | None],
    expected: tuple[str, str],
    *,
    retries: int,
    backoff: float = 0.05,
    jitter: DecorrelatedJitter | None = None,
) -> bool:
    """Re-run *probe* up to *retries* times; True iff every rerun reproduces
    the ``(signature, kind)`` verdict in *expected*."""
    for attempt in range(max(0, retries)):
        backoff_sleep(attempt, backoff, jitter=jitter)
        classified = classify(probe())
        verdict = classified[:2] if classified is not None else None
        if verdict != expected:
            return False
    return True
