"""Verdict-stability reruns with backoff.

A target whose bug fires only sometimes (races, uninitialised memory) yields
findings that would pollute deduplication: two probes of the same test can
land in different signatures.  When a finding classifies, the harness
re-probes it up to ``retries`` times; if any rerun classifies differently
the finding is flagged ``nondeterministic`` and deduplication keeps it apart
from stable bugs.

The backoff discipline (shared with the fault-tolerant reducer's probe
retries, :mod:`repro.robustness.reduction`) is *between* attempts only: the
first try runs immediately, then successive retries sleep
``backoff * 2**(attempt-1)``.  Sleeping before the first attempt — as an
earlier revision did — taxed every stable finding for nothing.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.compilers.base import TargetOutcome


def backoff_sleep(attempt: int, backoff: float) -> None:
    """Sleep the exponential backoff owed *before* 0-based *attempt*.

    ``attempt == 0`` (the first try) never sleeps; attempt ``k >= 1`` sleeps
    ``backoff * 2**(k-1)``.  With ``retries=1`` the single rerun therefore
    runs with zero added latency (regression-tested).
    """
    if backoff > 0 and attempt > 0:
        time.sleep(backoff * (2 ** (attempt - 1)))


def verdict_is_stable(
    probe: Callable[[], TargetOutcome],
    classify: Callable[[TargetOutcome], tuple | None],
    expected: tuple[str, str],
    *,
    retries: int,
    backoff: float = 0.05,
) -> bool:
    """Re-run *probe* up to *retries* times; True iff every rerun reproduces
    the ``(signature, kind)`` verdict in *expected*."""
    for attempt in range(max(0, retries)):
        backoff_sleep(attempt, backoff)
        classified = classify(probe())
        verdict = classified[:2] if classified is not None else None
        if verdict != expected:
            return False
    return True
