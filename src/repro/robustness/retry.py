"""Verdict-stability reruns with backoff.

A target whose bug fires only sometimes (races, uninitialised memory) yields
findings that would pollute deduplication: two probes of the same test can
land in different signatures.  When a finding classifies, the harness
re-probes it up to ``retries`` times (sleeping ``backoff * 2**attempt``
between runs); if any rerun classifies differently the finding is flagged
``nondeterministic`` and deduplication keeps it apart from stable bugs.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.compilers.base import TargetOutcome


def verdict_is_stable(
    probe: Callable[[], TargetOutcome],
    classify: Callable[[TargetOutcome], tuple | None],
    expected: tuple[str, str],
    *,
    retries: int,
    backoff: float = 0.05,
) -> bool:
    """Re-run *probe* up to *retries* times; True iff every rerun reproduces
    the ``(signature, kind)`` verdict in *expected*."""
    for attempt in range(max(0, retries)):
        if backoff > 0:
            time.sleep(backoff * (2**attempt))
        classified = classify(probe())
        verdict = classified[:2] if classified is not None else None
        if verdict != expected:
            return False
    return True
