"""Supervised probe execution: run target probes in a child process.

In-process probes are fast but fragile: a hang, runaway allocation, or hard
crash in a buggy optimization pass takes the whole campaign (and every
completed seed) down with it.  :class:`SupervisedTarget` wraps a target and
executes each ``run(module, inputs)`` probe in a persistent worker process:

* the module/inputs travel over a pipe; the worker runs the real
  ``target.run`` and sends the :class:`TargetOutcome` back — for well-behaved
  targets the supervised outcome is *equal* to the in-process one, so the
  paper's oracle semantics are preserved;
* a probe that exceeds the wall-clock bound gets its worker killed and maps
  to ``OutcomeKind.TIMEOUT``;
* a probe that exhausts the configured address-space cap (``RLIMIT_AS``,
  applied inside the worker) maps to ``OutcomeKind.RESOURCE``;
* a worker that dies hard (segfault, ``os._exit``, OOM-killer) maps to
  ``OutcomeKind.WORKER_CRASH``.

Workers restart lazily after a fault, so one bad probe costs one process,
not the campaign.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
from dataclasses import dataclass
from typing import Any

from repro.compilers.base import TargetOutcome
from repro.observability import NULL_TRACER, as_tracer
from repro.robustness.config import RobustnessConfig

#: ``fork`` keeps worker start-up cheap and lets non-picklable test doubles
#: ride along; platforms without it (Windows, macOS spawn-default) fall back
#: to the default context, which requires picklable targets.
_MP_CONTEXT = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else None
)


def _install_drain_handler(
    conn: multiprocessing.connection.Connection,
) -> None:
    """Make ``SIGTERM`` an orderly drain for a probe worker.

    Without a handler the default disposition kills the worker with exit
    code ``-SIGTERM``, indistinguishable from a hard death — a draining
    service would log its own shutdown as a worker crash.  The handler
    closes the request pipe (so a parent blocked on it sees EOF, not a
    torn frame) and exits 0.  ``os._exit`` is deliberate: the heap may be
    mid-probe, and there is nothing worth unwinding — probe workers hold
    no buffered results, every completed outcome was already sent.
    """
    import signal

    def _drain(signum: int, frame: Any) -> None:  # pragma: no cover - async
        try:
            conn.close()
        except OSError:
            pass
        os._exit(0)

    try:
        signal.signal(signal.SIGTERM, _drain)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass  # not the main thread / unsupported: keep the default


def _probe_worker_main(
    conn: multiprocessing.connection.Connection,
    target: Any,
    memory_limit_mb: int | None,
) -> None:
    """Worker loop: receive ``(module, inputs)``, answer with an outcome."""
    _install_drain_handler(conn)
    if memory_limit_mb is not None:
        try:
            import resource

            limit = memory_limit_mb * 1024 * 1024
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        except (ImportError, ValueError, OSError):  # pragma: no cover
            pass  # unsupported platform: supervise without the memory cap
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if request is None:
            return  # orderly shutdown
        if request[0] == "__batch__":
            # One round-trip, many probes.  A MemoryError mid-batch replies
            # with the outcomes computed so far (the parent re-runs the rest
            # on a fresh worker) and then restarts, like the single-probe
            # path.  Normal requests are ``(module, inputs)`` 2-tuples whose
            # first element is never a str, so the tag is unambiguous.
            outcomes: list = []
            restart = False
            for module, inputs in request[1]:
                try:
                    outcomes.append(target.run(module, inputs))
                except MemoryError:
                    del module, inputs
                    outcomes.append(
                        TargetOutcome.resource(
                            "MemoryError: probe exceeded its memory limit"
                        )
                    )
                    restart = True
                    break
                except BaseException as exc:  # noqa: BLE001
                    outcomes.append(
                        TargetOutcome.worker_crash(
                            f"unhandled {type(exc).__name__}: {exc}"
                        )
                    )
            try:
                conn.send(outcomes)
            except (BrokenPipeError, OSError, MemoryError):
                return
            if restart:
                return
            continue
        module, inputs = request
        restart = False
        try:
            outcome = target.run(module, inputs)
        except MemoryError:
            del module, inputs  # free headroom so the reply itself can send
            outcome = TargetOutcome.resource(
                "MemoryError: probe exceeded its memory limit"
            )
            restart = True  # the heap may be compromised; die after replying
        except BaseException as exc:  # noqa: BLE001 - the whole point
            outcome = TargetOutcome.worker_crash(
                f"unhandled {type(exc).__name__}: {exc}"
            )
        try:
            conn.send(outcome)
        except (BrokenPipeError, OSError, MemoryError):
            return
        if restart:
            return


@dataclass
class _Worker:
    process: Any
    conn: multiprocessing.connection.Connection


class SupervisedTarget:
    """A drop-in target wrapper that fault-isolates every probe.

    Proxies the identity attributes the harness reads (``name`` & co.), so a
    supervised target can stand anywhere a :class:`~repro.compilers.pipeline.
    Target` does — including inside interestingness tests, where the timeout
    bound is what keeps reduction from hanging on a flaky target.
    """

    def __init__(
        self, target: Any, config: RobustnessConfig, tracer: Any = NULL_TRACER
    ) -> None:
        self.target = target
        self.config = config
        self.tracer = as_tracer(tracer)
        self._worker: _Worker | None = None
        self._timeout_override: float | None = None

    # -- identity proxies ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.target.name

    @property
    def version(self) -> str:
        return self.target.version

    @property
    def gpu_type(self) -> str:
        return self.target.gpu_type

    @property
    def enabled_bugs(self):
        return self.target.enabled_bugs

    # -- probe timeout -------------------------------------------------------------

    def set_timeout_override(self, timeout: float | None) -> None:
        """Tighten (never widen) the wall-clock bound for subsequent probes.

        The fault-tolerant reducer sets this to the reduction's *remaining*
        wall-clock budget before each candidate probe, so a single hung probe
        can overshoot ``max_seconds`` by at most the remaining budget — the
        effective bound is ``min(config.probe_timeout, override)``.  ``None``
        restores the configured timeout.
        """
        self._timeout_override = timeout

    @property
    def effective_timeout(self) -> float | None:
        configured = self.config.probe_timeout
        override = self._timeout_override
        if override is None:
            return configured
        if configured is None:
            return override
        return min(configured, override)

    # -- worker lifecycle ----------------------------------------------------------

    def _ensure_worker(self) -> _Worker:
        if self._worker is not None and self._worker.process.is_alive():
            return self._worker
        if self._worker is not None:
            self._reap()
        parent_conn, child_conn = _MP_CONTEXT.Pipe()
        process = _MP_CONTEXT.Process(
            target=_probe_worker_main,
            args=(child_conn, self.target, self.config.memory_limit_mb),
            daemon=True,
            name=f"probe-{self.target.name}",
        )
        process.start()
        child_conn.close()  # the parent end is ours; the child keeps its own
        self._worker = _Worker(process, parent_conn)
        if self.tracer.enabled:
            self.tracer.emit(
                "supervisor.worker_start", target=self.target.name, worker_pid=process.pid
            )
        return self._worker

    def _reap(self, *, kill: bool = False) -> None:
        worker = self._worker
        if worker is None:
            return
        self._worker = None
        try:
            if kill and worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=1.0)
        except (ValueError, OSError):  # pragma: no cover - already gone
            pass
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def close(self) -> None:
        """Shut the worker down cleanly (sends the stop sentinel)."""
        worker = self._worker
        if worker is None:
            return
        try:
            worker.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._reap()

    def drain(self, timeout: float = 5.0) -> bool:
        """SIGTERM the worker and wait for an orderly (exit 0) shutdown.

        The drain path a stopping service uses instead of :meth:`close`
        when the worker may be mid-probe and the pipe cannot be trusted to
        deliver the stop sentinel.  Returns True when the worker exited 0
        (the SIGTERM handler's orderly path); a worker that already died
        hard, or ignores SIGTERM past *timeout*, reports an unclean drain.
        """
        worker = self._worker
        if worker is None:
            return True
        clean = True
        try:
            if worker.process.is_alive():
                worker.process.terminate()
            worker.process.join(timeout=timeout)
            clean = worker.process.exitcode == 0
        except (ValueError, OSError):  # pragma: no cover - already gone
            pass
        self._reap(kill=True)
        return clean

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self._reap(kill=True)
        except Exception:
            pass

    # -- the probe -----------------------------------------------------------------

    def run(self, module: Any, inputs: dict | None = None) -> TargetOutcome:
        """Compile and execute *module* under supervision."""
        worker = None
        for _ in range(2):  # one retry if the previous worker died while idle
            worker = self._ensure_worker()
            try:
                worker.conn.send((module, dict(inputs or {})))
                break
            except (BrokenPipeError, OSError):
                self._reap(kill=True)
                worker = None
        if worker is None:
            return TargetOutcome.worker_crash("probe worker unreachable")

        timeout = self.effective_timeout
        try:
            ready = worker.conn.poll(timeout)
        except (BrokenPipeError, OSError):
            ready = False
        if not ready:
            self._reap(kill=True)
            if self.tracer.enabled:
                self.tracer.emit(
                    "supervisor.timeout",
                    target=self.target.name,
                    timeout_s=timeout,
                )
            return TargetOutcome.timeout(timeout)
        try:
            outcome = worker.conn.recv()
        except (EOFError, OSError):
            exitcode = worker.process.exitcode
            self._reap(kill=True)
            detail = (
                f"probe worker died (exit code {exitcode})"
                if exitcode is not None
                else "probe worker died mid-probe"
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    "supervisor.worker_crash",
                    target=self.target.name,
                    exitcode=exitcode,
                )
            return TargetOutcome.worker_crash(detail)
        if not worker.process.is_alive():
            self._reap()  # orderly post-fault restart (e.g. after MemoryError)
        return outcome

    def run_batch(self, items: list) -> list:
        """Evaluate ``[(module, inputs), ...]`` in one worker round-trip.

        Returns one outcome per item, in order, byte-identical to per-item
        :meth:`run` calls.  The timeout budget scales with the batch size; a
        worker that dies mid-batch answers for the items it finished and the
        remainder re-runs individually on a fresh worker.
        """
        items = [(module, dict(inputs or {})) for module, inputs in items]
        if not items:
            return []
        if len(items) == 1:
            return [self.run(*items[0])]
        worker = None
        for _ in range(2):
            worker = self._ensure_worker()
            try:
                worker.conn.send(("__batch__", items))
                break
            except (BrokenPipeError, OSError):
                self._reap(kill=True)
                worker = None
        if worker is None:
            crash = TargetOutcome.worker_crash("probe worker unreachable")
            return [crash] * len(items)

        timeout = self.effective_timeout
        budget = None if timeout is None else timeout * len(items)
        try:
            ready = worker.conn.poll(budget)
        except (BrokenPipeError, OSError):
            ready = False
        if not ready:
            self._reap(kill=True)
            if self.tracer.enabled:
                self.tracer.emit(
                    "supervisor.timeout",
                    target=self.target.name,
                    timeout_s=budget,
                )
            return [TargetOutcome.timeout(timeout)] * len(items)
        try:
            outcomes = worker.conn.recv()
        except (EOFError, OSError):
            exitcode = worker.process.exitcode
            self._reap(kill=True)
            detail = (
                f"probe worker died (exit code {exitcode})"
                if exitcode is not None
                else "probe worker died mid-batch"
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    "supervisor.worker_crash",
                    target=self.target.name,
                    exitcode=exitcode,
                )
            return [TargetOutcome.worker_crash(detail)] * len(items)
        if not worker.process.is_alive():
            self._reap()  # post-fault restart (e.g. MemoryError mid-batch)
        while len(outcomes) < len(items):  # finish what the dead worker left
            outcomes.append(self.run(*items[len(outcomes)]))
        return outcomes


def find_supervised(target: Any) -> SupervisedTarget | None:
    """The :class:`SupervisedTarget` inside *target*'s wrapper chain, if any.

    Probe targets stack wrappers (caching, delay doubles, supervision); this
    walks ``.target`` / ``._target`` links until it finds the supervised
    layer, with a cycle guard so a malformed chain can't loop forever.
    """
    seen: set[int] = set()
    current = target
    while current is not None and id(current) not in seen:
        if isinstance(current, SupervisedTarget):
            return current
        seen.add(id(current))
        current = getattr(current, "target", None) or getattr(
            current, "_target", None
        )
    return None


def supervise_targets(targets, config: RobustnessConfig, tracer: Any = None) -> list:
    """Wrap *targets* with supervision when the config asks for it.

    ``tracer`` (a :class:`~repro.observability.Tracer` or ``None``) receives
    ``supervisor.*`` lifecycle events — worker starts, timeout kills, hard
    crashes — from each wrapped target.
    """
    if not config.supervises:
        return list(targets)
    tracer = as_tracer(tracer)
    return [
        t
        if isinstance(t, SupervisedTarget)
        else SupervisedTarget(t, config, tracer=tracer)
        for t in targets
    ]


def close_targets(targets) -> None:
    """Shut down any supervised targets in *targets* (idempotent).

    Looks through wrapper chains (e.g. a caching wrapper around a supervised
    target), so close-on-finish works whatever the stacking order.
    """
    for target in targets:
        supervised = find_supervised(target)
        if supervised is not None:
            supervised.close()
