"""Reference interpreter for the IR (the project's ``Semantics(P, I)``)."""

from repro.interp.errors import (
    ExecError,
    FuelExhaustedError,
    MissingInputError,
    UndefinedBehaviourError,
)
from repro.interp.interpreter import (
    DEFAULT_FUEL,
    ExecutionResult,
    Interpreter,
    execute,
    images_agree,
    render,
)
from repro.interp.values import Value, values_equal

__all__ = [
    "DEFAULT_FUEL",
    "ExecError",
    "ExecutionResult",
    "FuelExhaustedError",
    "Interpreter",
    "MissingInputError",
    "UndefinedBehaviourError",
    "Value",
    "execute",
    "images_agree",
    "render",
    "values_equal",
]
