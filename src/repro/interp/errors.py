"""Exception hierarchy for reference execution."""

from __future__ import annotations


class ExecError(Exception):
    """Base class for all execution failures."""


class UndefinedBehaviourError(ExecError):
    """The program hit undefined behaviour (division by zero, OOB access, use
    of an undef value).  Programs used as fuzzing seeds must never raise this
    on their inputs — it is a precondition of transformation-based testing."""


class FuelExhaustedError(ExecError):
    """The execution budget ran out.  Following the paper's Definition 2.2 we
    treat non-termination as faulting."""


class MissingInputError(ExecError):
    """A uniform/input variable had no binding and no default was allowed."""
