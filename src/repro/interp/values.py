"""Runtime value representation and numeric semantics.

Scalars are plain Python ``bool`` / ``int`` / ``float``; composites are Python
lists (nested for nested composites).  Integers follow 32-bit two's-complement
wraparound; floats are rounded to IEEE-754 binary32 after every operation so
results are deterministic and compiler-independent.
"""

from __future__ import annotations

import math
import struct

from repro.ir import types as tys
from repro.interp.errors import UndefinedBehaviourError

Value = bool | int | float | list

_I32_MIN = -(2**31)
_I32_MAX = 2**31 - 1


def wrap_i32(value: int) -> int:
    """Wrap *value* into signed 32-bit two's-complement range."""
    return ((value + 2**31) % 2**32) - 2**31


def f32(value: float) -> float:
    """Round *value* to the nearest binary32 float (overflow becomes inf)."""
    try:
        return struct.unpack("<f", struct.pack("<f", value))[0]
    except OverflowError:
        return math.copysign(math.inf, value)


def sdiv(a: int, b: int) -> int:
    """C-style truncating signed division; division by zero is UB."""
    if b == 0:
        raise UndefinedBehaviourError("signed division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return wrap_i32(q)


def srem(a: int, b: int) -> int:
    """C-style signed remainder (sign follows the dividend); by zero is UB."""
    if b == 0:
        raise UndefinedBehaviourError("signed remainder by zero")
    return wrap_i32(a - b * sdiv(a, b))


def fdiv(a: float, b: float) -> float:
    """IEEE float division: defined for zero divisors (inf/nan)."""
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.copysign(math.inf, sign)
    return f32(a / b)


def default_value(ty: tys.Type) -> Value:
    """Zero-initialised value of structural type *ty*."""
    if isinstance(ty, tys.BoolType):
        return False
    if isinstance(ty, tys.IntType):
        return 0
    if isinstance(ty, tys.FloatType):
        return 0.0
    if isinstance(ty, tys.VectorType):
        return [default_value(ty.element) for _ in range(ty.count)]
    if isinstance(ty, tys.ArrayType):
        return [default_value(ty.element) for _ in range(ty.length)]
    if isinstance(ty, tys.StructType):
        return [default_value(m) for m in ty.members]
    raise TypeError(f"no default value for {ty}")


def coerce_to_type(value: object, ty: tys.Type) -> Value:
    """Coerce a user-supplied input value to *ty*, validating its shape."""
    if isinstance(ty, tys.BoolType):
        return bool(value)
    if isinstance(ty, tys.IntType):
        return wrap_i32(int(value))  # type: ignore[arg-type]
    if isinstance(ty, tys.FloatType):
        return f32(float(value))  # type: ignore[arg-type]
    if ty.is_composite():
        if not isinstance(value, (list, tuple)):
            raise TypeError(f"composite input for {ty} must be a sequence")
        count = tys.composite_member_count(ty)
        if len(value) != count:
            raise TypeError(f"input for {ty} needs {count} members, got {len(value)}")
        return [
            coerce_to_type(member, tys.composite_member_type(ty, i))
            for i, member in enumerate(value)
        ]
    raise TypeError(f"cannot bind input of type {ty}")


def deep_copy(value: Value) -> Value:
    """Copy a runtime value (composites are mutable lists)."""
    if isinstance(value, list):
        return [deep_copy(member) for member in value]
    return value


def values_equal(a: Value, b: Value, *, float_tolerance: float = 0.0) -> bool:
    """Structural equality of runtime values.

    NaNs compare equal to NaNs (we want deterministic result comparison, not
    IEEE comparison); a nonzero *float_tolerance* allows small float drift.
    """
    if isinstance(a, list) or isinstance(b, list):
        if not (isinstance(a, list) and isinstance(b, list)) or len(a) != len(b):
            return False
        return all(
            values_equal(x, y, float_tolerance=float_tolerance) for x, y in zip(a, b)
        )
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b if isinstance(a, bool) and isinstance(b, bool) else False
    if isinstance(a, float) or isinstance(b, float):
        fa, fb = float(a), float(b)
        if math.isnan(fa) and math.isnan(fb):
            return True
        if math.isinf(fa) or math.isinf(fb):
            return fa == fb
        return abs(fa - fb) <= float_tolerance
    return a == b
