"""Reference interpreter: the project's ``Semantics(P, I)``.

Executes a module's entry point on a set of named inputs, with a fuel bound so
non-termination surfaces as :class:`FuelExhaustedError` (the paper regards a
non-terminating program as faulting).  Outputs are the final values of
``Output``-storage module variables, keyed by debug name.

The interpreter is intentionally strict: undefined behaviour (division by
zero, out-of-bounds access chains, reading ``OpUndef``) raises
:class:`UndefinedBehaviourError` rather than picking a value, so seed corpora
can be certified UB-free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import types as tys
from repro.ir.module import Function, Instruction, IrError, Module
from repro.ir.opcodes import Op
from repro.interp.errors import (
    ExecError,
    FuelExhaustedError,
    UndefinedBehaviourError,
)
from repro.interp.values import (
    Value,
    coerce_to_type,
    deep_copy,
    default_value,
    f32,
    fdiv,
    sdiv,
    srem,
    values_equal,
    wrap_i32,
)

DEFAULT_FUEL = 200_000
MAX_CALL_DEPTH = 64

Inputs = dict[str, object]


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of one successful execution.

    ``killed`` mirrors SPIR-V's ``OpKill``: the invocation was discarded, so
    ``outputs`` are not meaningful and two killed results always agree.
    """

    outputs: dict[str, Value] = field(default_factory=dict)
    killed: bool = False
    fuel_used: int = 0

    def agrees_with(self, other: "ExecutionResult", *, float_tolerance: float = 0.0) -> bool:
        if self.killed or other.killed:
            return self.killed == other.killed
        if self.outputs.keys() != other.outputs.keys():
            return False
        return all(
            values_equal(self.outputs[k], other.outputs[k], float_tolerance=float_tolerance)
            for k in self.outputs
        )


class _Kill(Exception):
    """Internal signal: OpKill executed."""


@dataclass
class _Pointer:
    """A pointer value: a memory cell id plus an index path into it."""

    cell: int
    path: tuple[int, ...] = ()


class Interpreter:
    """Executes one module.  Build one per module; ``run`` may be called many
    times with different inputs."""

    def __init__(self, module: Module, *, fuel: int = DEFAULT_FUEL) -> None:
        self.module = module
        self.fuel_limit = fuel
        self.types = module.type_table()
        self.defs = module.def_map()
        self.functions = {f.result_id: f for f in module.functions}

    # -- public API -------------------------------------------------------------

    def run(self, inputs: Inputs | None = None) -> ExecutionResult:
        """Execute the entry point on *inputs*; see the module docstring."""
        inputs = inputs or {}
        entry = self.module.entry_function()
        self._fuel = self.fuel_limit
        self._memory: dict[int, Value] = {}
        self._next_cell = 0
        self._cell_of_global: dict[int, int] = {}
        self._init_globals(inputs)
        killed = False
        try:
            self._call(entry, [], depth=0)
        except _Kill:
            killed = True
        outputs = self._collect_outputs()
        return ExecutionResult(
            outputs=outputs, killed=killed, fuel_used=self.fuel_limit - self._fuel
        )

    # -- memory -------------------------------------------------------------------

    def _new_cell(self, initial: Value) -> int:
        cell = self._next_cell
        self._next_cell += 1
        self._memory[cell] = initial
        return cell

    def _init_globals(self, inputs: Inputs) -> None:
        for inst in self.module.global_variables():
            ptr_ty = self.types[inst.type_id]
            assert isinstance(ptr_ty, tys.PointerType)
            name = self.module.name_of(inst.result_id)
            if ptr_ty.storage in (tys.StorageClass.UNIFORM, tys.StorageClass.INPUT):
                if name is not None and name in inputs:
                    value = coerce_to_type(inputs[name], ptr_ty.pointee)
                else:
                    value = default_value(ptr_ty.pointee)
            elif len(inst.operands) > 1:
                value = deep_copy(self._constant_value(int(inst.operands[1])))
            else:
                value = default_value(ptr_ty.pointee)
            assert inst.result_id is not None
            self._cell_of_global[inst.result_id] = self._new_cell(value)

    def _collect_outputs(self) -> dict[str, Value]:
        outputs: dict[str, Value] = {}
        for inst in self.module.global_variables():
            ptr_ty = self.types[inst.type_id]
            assert isinstance(ptr_ty, tys.PointerType)
            if ptr_ty.storage is not tys.StorageClass.OUTPUT:
                continue
            assert inst.result_id is not None
            name = self.module.name_of(inst.result_id) or f"%{inst.result_id}"
            outputs[name] = deep_copy(self._memory[self._cell_of_global[inst.result_id]])
        return outputs

    def _load_pointer(self, pointer: _Pointer) -> Value:
        value = self._memory[pointer.cell]
        for index in pointer.path:
            if not isinstance(value, list) or not 0 <= index < len(value):
                raise UndefinedBehaviourError("out-of-bounds pointer load")
            value = value[index]
        return deep_copy(value)

    def _store_pointer(self, pointer: _Pointer, value: Value) -> None:
        if not pointer.path:
            self._memory[pointer.cell] = deep_copy(value)
            return
        target = self._memory[pointer.cell]
        for index in pointer.path[:-1]:
            if not isinstance(target, list) or not 0 <= index < len(target):
                raise UndefinedBehaviourError("out-of-bounds pointer store")
            target = target[index]
        last = pointer.path[-1]
        if not isinstance(target, list) or not 0 <= last < len(target):
            raise UndefinedBehaviourError("out-of-bounds pointer store")
        target[last] = deep_copy(value)

    # -- constants ----------------------------------------------------------------

    def _constant_value(self, const_id: int) -> Value:
        inst = self.defs[const_id]
        if inst.opcode is Op.ConstantTrue:
            return True
        if inst.opcode is Op.ConstantFalse:
            return False
        if inst.opcode is Op.Constant:
            ty = self.types[inst.type_id]
            raw = inst.operands[0]
            if isinstance(ty, tys.IntType):
                return wrap_i32(int(raw))
            return f32(float(raw))
        if inst.opcode is Op.ConstantComposite:
            return [self._constant_value(int(m)) for m in inst.operands]
        if inst.opcode is Op.Undef:
            # SPIR-V leaves the value unspecified; we *define* it as the zero
            # value so that reads of undef are deterministic.  This keeps
            # Theorem 2.6 intact while letting transformations place undefs
            # in positions whose value is irrelevant.
            return default_value(self.types[inst.type_id])
        raise IrError(f"%{const_id} is not a constant")

    # -- execution ----------------------------------------------------------------

    def _call(self, function: Function, args: list[Value], depth: int) -> Value | None:
        if depth > MAX_CALL_DEPTH:
            raise FuelExhaustedError("call depth limit exceeded")
        env: dict[int, Value | _Pointer] = {}
        for param, arg in zip(function.params, args):
            assert param.result_id is not None
            env[param.result_id] = arg

        # Allocate local variables (they live for the whole call).
        for block in function.blocks:
            for inst in block.instructions:
                if inst.opcode is Op.Variable:
                    ptr_ty = self.types[inst.type_id]
                    assert isinstance(ptr_ty, tys.PointerType)
                    if len(inst.operands) > 1:
                        initial = deep_copy(self._constant_value(int(inst.operands[1])))
                    else:
                        initial = default_value(ptr_ty.pointee)
                    assert inst.result_id is not None
                    env[inst.result_id] = _Pointer(self._new_cell(initial))

        block = function.entry_block()
        previous_label: int | None = None
        while True:
            # Phis first, evaluated simultaneously from the incoming edge.
            phi_values: dict[int, Value | _Pointer] = {}
            for phi in block.phis():
                chosen: int | None = None
                for value_id, pred in phi.phi_pairs():
                    if pred == previous_label:
                        chosen = value_id
                        break
                if chosen is None:
                    raise ExecError(
                        f"phi %{phi.result_id} has no incoming value for "
                        f"predecessor %{previous_label}"
                    )
                assert phi.result_id is not None
                phi_values[phi.result_id] = self._value(chosen, env)
            env.update(phi_values)

            for inst in block.non_phi_instructions():
                if inst.opcode is Op.Variable:
                    continue  # pre-allocated above
                self._burn_fuel()
                self._execute(inst, env, depth)

            term = block.terminator
            assert term is not None
            self._burn_fuel()
            op = term.opcode
            if op is Op.Branch:
                previous_label = block.label_id
                block = function.block(int(term.operands[0]))
            elif op is Op.BranchConditional:
                cond = self._value(int(term.operands[0]), env)
                previous_label = block.label_id
                target = term.operands[1] if cond else term.operands[2]
                block = function.block(int(target))
            elif op is Op.Return:
                return None
            elif op is Op.ReturnValue:
                return self._value(int(term.operands[0]), env)
            elif op is Op.Kill:
                raise _Kill()
            elif op is Op.Unreachable:
                raise UndefinedBehaviourError("executed OpUnreachable")
            else:  # pragma: no cover - exhaustive over terminators
                raise ExecError(f"unknown terminator {op}")

    def _burn_fuel(self) -> None:
        self._fuel -= 1
        if self._fuel <= 0:
            raise FuelExhaustedError("execution fuel exhausted")

    def _value(self, value_id: int, env: dict[int, Value | _Pointer]) -> Value | _Pointer:
        if value_id in env:
            value = env[value_id]
            return deep_copy(value) if isinstance(value, list) else value
        inst = self.defs.get(value_id)
        if inst is None:
            raise ExecError(f"%{value_id} has no value")
        if inst.opcode is Op.Variable and value_id in self._cell_of_global:
            return _Pointer(self._cell_of_global[value_id])
        return self._constant_value(value_id)

    def _execute(self, inst: Instruction, env: dict[int, Value | _Pointer], depth: int) -> None:
        op = inst.opcode
        rid = inst.result_id

        def val(index: int) -> Value:
            result = self._value(int(inst.operands[index]), env)
            if isinstance(result, _Pointer):
                raise ExecError("pointer used as value")
            return result

        def ptr(index: int) -> _Pointer:
            result = self._value(int(inst.operands[index]), env)
            if not isinstance(result, _Pointer):
                raise ExecError("value used as pointer")
            return result

        def set_result(value: Value | _Pointer) -> None:
            assert rid is not None
            env[rid] = value

        if op is Op.Load:
            set_result(self._load_pointer(ptr(0)))
        elif op is Op.Store:
            self._store_pointer(ptr(0), val(1))
        elif op is Op.AccessChain:
            base = ptr(0)
            path = list(base.path)
            current_ty = self._pointee_type(int(inst.operands[0]), env)
            for index_id in inst.operands[1:]:
                index = self._value(int(index_id), env)
                if isinstance(index, _Pointer) or isinstance(index, (list, bool)):
                    raise ExecError("access chain index must be an integer")
                count = tys.composite_member_count(current_ty)
                if not 0 <= int(index) < count:
                    raise UndefinedBehaviourError(
                        f"access chain index {index} out of bounds for {current_ty}"
                    )
                current_ty = tys.composite_member_type(current_ty, int(index))
                path.append(int(index))
            set_result(_Pointer(base.cell, tuple(path)))
        elif op is Op.CopyObject:
            set_result(self._value(int(inst.operands[0]), env))
        elif op in _INT_BIN:
            set_result(self._int_binop(op, val(0), val(1)))
        elif op is Op.SNegate:
            set_result(self._map_scalars(val(0), lambda a: wrap_i32(-a)))
        elif op in _FLOAT_BIN:
            set_result(self._float_binop(op, val(0), val(1)))
        elif op is Op.FNegate:
            set_result(self._map_scalars(val(0), lambda a: f32(-a)))
        elif op in _LOGIC_BIN:
            a, b = val(0), val(1)
            set_result(bool(a and b) if op is Op.LogicalAnd else bool(a or b))
        elif op is Op.LogicalNot:
            set_result(not val(0))
        elif op in _COMPARES:
            set_result(_COMPARES[op](val(0), val(1)))
        elif op is Op.Select:
            set_result(val(1) if val(0) else val(2))
        elif op is Op.CompositeConstruct:
            set_result([self._as_value(int(m), env) for m in inst.operands])
        elif op is Op.CompositeExtract:
            value = val(0)
            for index in inst.operands[1:]:
                if not isinstance(value, list) or not 0 <= int(index) < len(value):
                    raise UndefinedBehaviourError("composite extract out of bounds")
                value = value[int(index)]
            set_result(deep_copy(value))
        elif op is Op.CompositeInsert:
            obj = val(0)
            composite = deep_copy(val(1))
            target = composite
            indices = [int(i) for i in inst.operands[2:]]
            for index in indices[:-1]:
                if not isinstance(target, list) or not 0 <= index < len(target):
                    raise UndefinedBehaviourError("composite insert out of bounds")
                target = target[index]
            if (
                not indices
                or not isinstance(target, list)
                or not 0 <= indices[-1] < len(target)
            ):
                raise UndefinedBehaviourError("composite insert out of bounds")
            target[indices[-1]] = obj
            set_result(composite)
        elif op is Op.ConvertSToF:
            set_result(self._map_scalars(val(0), lambda a: f32(float(a))))
        elif op is Op.ConvertFToS:
            set_result(self._map_scalars(val(0), _float_to_int))
        elif op is Op.FunctionCall:
            callee = self.functions.get(int(inst.operands[0]))
            if callee is None:
                raise ExecError(f"call to unknown function %{inst.operands[0]}")
            args = [self._value(int(a), env) for a in inst.operands[1:]]
            result = self._call(callee, args, depth + 1)
            if rid is not None:
                env[rid] = result if result is not None else None  # type: ignore[assignment]
        elif op is Op.Phi:  # pragma: no cover - handled at block entry
            raise ExecError("phi executed outside block entry")
        elif op is Op.Undef:
            raise UndefinedBehaviourError("use of undef")
        else:  # pragma: no cover - exhaustive over non-terminator opcodes
            raise ExecError(f"cannot execute {op}")

    def _as_value(self, value_id: int, env: dict) -> Value:
        value = self._value(value_id, env)
        if isinstance(value, _Pointer):
            raise ExecError("pointer inside composite")
        return value

    def _pointee_type(self, pointer_id: int, env: dict) -> tys.Type:
        inst = self.defs[pointer_id]
        assert inst.type_id is not None
        ptr_ty = self.types[inst.type_id]
        assert isinstance(ptr_ty, tys.PointerType)
        return ptr_ty.pointee

    # -- scalar/vector arithmetic ---------------------------------------------------

    def _map_scalars(self, value: Value, fn) -> Value:
        if isinstance(value, list):
            return [self._map_scalars(member, fn) for member in value]
        return fn(value)

    def _zip_scalars(self, a: Value, b: Value, fn) -> Value:
        if isinstance(a, list):
            assert isinstance(b, list) and len(a) == len(b)
            return [self._zip_scalars(x, y, fn) for x, y in zip(a, b)]
        return fn(a, b)

    def _int_binop(self, op: Op, a: Value, b: Value) -> Value:
        fns = {
            Op.IAdd: lambda x, y: wrap_i32(x + y),
            Op.ISub: lambda x, y: wrap_i32(x - y),
            Op.IMul: lambda x, y: wrap_i32(x * y),
            Op.SDiv: sdiv,
            Op.SRem: srem,
        }
        return self._zip_scalars(a, b, fns[op])

    def _float_binop(self, op: Op, a: Value, b: Value) -> Value:
        fns = {
            Op.FAdd: lambda x, y: f32(x + y),
            Op.FSub: lambda x, y: f32(x - y),
            Op.FMul: lambda x, y: f32(x * y),
            Op.FDiv: fdiv,
        }
        return self._zip_scalars(a, b, fns[op])


def _float_to_int(value: float) -> int:
    import math

    if math.isnan(value) or math.isinf(value):
        raise UndefinedBehaviourError("float-to-int conversion of nan/inf")
    return wrap_i32(int(value))


_INT_BIN = {Op.IAdd, Op.ISub, Op.IMul, Op.SDiv, Op.SRem}
_FLOAT_BIN = {Op.FAdd, Op.FSub, Op.FMul, Op.FDiv}
_LOGIC_BIN = {Op.LogicalAnd, Op.LogicalOr}


def _scalarwise(fn):
    def compare(a: Value, b: Value) -> Value:
        if isinstance(a, list):
            assert isinstance(b, list)
            return [compare(x, y) for x, y in zip(a, b)]
        return fn(a, b)

    return compare


_COMPARES = {
    Op.IEqual: _scalarwise(lambda a, b: a == b),
    Op.INotEqual: _scalarwise(lambda a, b: a != b),
    Op.SLessThan: _scalarwise(lambda a, b: a < b),
    Op.SLessThanEqual: _scalarwise(lambda a, b: a <= b),
    Op.SGreaterThan: _scalarwise(lambda a, b: a > b),
    Op.SGreaterThanEqual: _scalarwise(lambda a, b: a >= b),
    Op.FOrdEqual: _scalarwise(lambda a, b: a == b),
    Op.FOrdNotEqual: _scalarwise(lambda a, b: a != b),
    Op.FOrdLessThan: _scalarwise(lambda a, b: a < b),
    Op.FOrdLessThanEqual: _scalarwise(lambda a, b: a <= b),
    Op.FOrdGreaterThan: _scalarwise(lambda a, b: a > b),
    Op.FOrdGreaterThanEqual: _scalarwise(lambda a, b: a >= b),
}


def execute(module: Module, inputs: Inputs | None = None, *, fuel: int = DEFAULT_FUEL) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(module, fuel=fuel).run(inputs)


def render(
    module: Module,
    inputs: Inputs | None = None,
    *,
    width: int = 4,
    height: int = 4,
    fuel: int = DEFAULT_FUEL,
) -> list[list[ExecutionResult]]:
    """Run the entry point once per "fragment" on a small grid.

    Mimics fragment-shader execution: each invocation sees an Input-storage
    variable named ``frag_coord`` holding ``[x, y]``.  Returns the per-pixel
    results; killed pixels model discarded fragments (holes in the image, as
    in the paper's Pixel 5 bug).
    """
    interpreter = Interpreter(module, fuel=fuel)
    image: list[list[ExecutionResult]] = []
    for y in range(height):
        row = []
        for x in range(width):
            frame_inputs = dict(inputs or {})
            frame_inputs.setdefault("frag_coord", [x, y])
            row.append(interpreter.run(frame_inputs))
        image.append(row)
    return image


def images_agree(
    a: list[list[ExecutionResult]],
    b: list[list[ExecutionResult]],
    *,
    float_tolerance: float = 0.0,
) -> bool:
    """Pixel-wise agreement of two rendered grids."""
    if len(a) != len(b) or any(len(ra) != len(rb) for ra, rb in zip(a, b)):
        return False
    return all(
        pa.agrees_with(pb, float_tolerance=float_tolerance)
        for ra, rb in zip(a, b)
        for pa, pb in zip(ra, rb)
    )
