"""Seed corpus: reference and donor programs.

The paper seeds spirv-fuzz with 21 numerically-stable GraphicsFuzz reference
shaders and 43 donor shaders.  We generate the same counts programmatically:
each program is a small, UB-free "fragment shader" over our IR, executed on a
fixed input binding.  Every reference is checked by the test suite to
validate and execute cleanly on its inputs (the precondition of
transformation-based testing).

References deliberately avoid the *trigger features* of the injected bug
catalogue (empty kill blocks, deep access chains, DontInline, ≥4-parameter
functions, bool vectors, …) so that bug-inducing programs must be *produced
by transformation*, mirroring how the paper's bugs were found.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir import types as tys
from repro.ir.builder import BlockBuilder, FunctionBuilder, ModuleBuilder
from repro.ir.module import Module
from repro.ir.opcodes import Op

INT = tys.IntType()
FLOAT = tys.FloatType()
BOOL = tys.BoolType()
VEC4 = tys.VectorType(FLOAT, 4)
VEC2 = tys.VectorType(FLOAT, 2)


@dataclass(frozen=True)
class CorpusProgram:
    """A seed program with its fixed input binding."""

    name: str
    module: Module
    inputs: dict[str, object] = field(default_factory=dict)


def _counted_loop(
    b: ModuleBuilder,
    f: FunctionBuilder,
    entry: BlockBuilder,
    bound_id: int,
    body_build,
) -> BlockBuilder:
    """Append ``for i in 0..bound`` to *entry*; returns the exit block builder.

    ``body_build(body: BlockBuilder, i_value: int)`` fills the loop body.
    The loop uses a memory-form counter so mem2reg has something to promote.
    """
    i_var = entry.local_variable(INT)
    c0, c1 = b.int_const(0), b.int_const(1)
    entry.store(i_var, c0)
    header = f.block()
    body = f.block()
    exit_block = f.block()
    entry.branch(header.label_id)
    i_val = header.load(INT, i_var)
    cond = header.slt(i_val, bound_id)
    header.branch_cond(cond, body.label_id, exit_block.label_id)
    i_body = body.load(INT, i_var)
    body_build(body, i_body)
    next_i = body.iadd(i_body, c1)
    body.store(i_var, next_i)
    body.branch(header.label_id)
    return exit_block


def _ref_arith_mix(variant: int) -> CorpusProgram:
    """Straight-line integer and float arithmetic."""
    b = ModuleBuilder()
    out_i = b.output("out_int", INT)
    out_f = b.output("out_float", FLOAT)
    u_a = b.uniform("a", INT)
    u_b = b.uniform("b", INT)
    u_x = b.uniform("x", FLOAT)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    a = blk.load(INT, u_a)
    bb = blk.load(INT, u_b)
    s = blk.iadd(a, bb)
    d = blk.isub(a, bb)
    p = blk.imul(s, d)
    q = blk.sdiv(p, b.int_const(7 + variant))
    r = blk.binop(Op.SRem, INT, q, b.int_const(13))
    total = blk.iadd(q, r)
    blk.store(out_i, total)
    x = blk.load(FLOAT, u_x)
    y = blk.fmul(x, b.float_const(0.5))
    z = blk.fadd(y, b.float_const(float(variant)))
    w = blk.fsub(z, x)
    blk.store(out_f, w)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(
        f"arith_mix_{variant}", b.build(), {"a": 23 + variant, "b": 11, "x": 2.25}
    )


def _ref_loop_sum(bound: int) -> CorpusProgram:
    """Accumulate ``sum(i * i + i)`` over a uniform-bounded loop."""
    b = ModuleBuilder()
    out = b.output("total", INT)
    u_n = b.uniform("n", INT)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    acc_var = entry.local_variable(INT)
    entry.store(acc_var, b.int_const(0))
    n = entry.load(INT, u_n)

    def body(body_blk: BlockBuilder, i_val: int) -> None:
        sq = body_blk.imul(i_val, i_val)
        term = body_blk.iadd(sq, i_val)
        acc = body_blk.load(INT, acc_var)
        acc2 = body_blk.iadd(acc, term)
        body_blk.store(acc_var, acc2)

    exit_block = _counted_loop(b, f, entry, n, body)
    final = exit_block.load(INT, acc_var)
    exit_block.store(out, final)
    exit_block.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"loop_sum_{bound}", b.build(), {"n": bound})


def _ref_branchy(variant: int) -> CorpusProgram:
    """A two-level if/else ladder over uniform comparisons."""
    b = ModuleBuilder()
    out = b.output("picked", INT)
    u_k = b.uniform("k", INT)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    then_b = f.block()
    inner_then = f.block()
    inner_else = f.block()
    inner_join = f.block()
    else_b = f.block()
    join = f.block()

    k = entry.load(INT, u_k)
    c10 = b.int_const(10)
    cond = entry.slt(k, c10)
    entry.branch_cond(cond, then_b.label_id, else_b.label_id)

    cond2 = then_b.slt(k, b.int_const(variant + 3))
    then_b.branch_cond(cond2, inner_then.label_id, inner_else.label_id)
    v1 = inner_then.imul(k, b.int_const(2))
    inner_then.branch(inner_join.label_id)
    v2 = inner_else.iadd(k, b.int_const(100))
    inner_else.branch(inner_join.label_id)
    picked_inner = inner_join.phi(
        INT, [(v1, inner_then.label_id), (v2, inner_else.label_id)]
    )
    inner_join.branch(join.label_id)

    v3 = else_b.isub(k, b.int_const(5))
    else_b.branch(join.label_id)
    picked = join.phi(
        INT, [(picked_inner, inner_join.label_id), (v3, else_b.label_id)]
    )
    join.store(out, picked)
    join.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"branchy_{variant}", b.build(), {"k": 4 + variant})


def _ref_vec_blend(variant: int) -> CorpusProgram:
    """vec4 colour blending, written component-wise through access chains
    (so originals never contain 4-ary composite constructs)."""
    b = ModuleBuilder()
    out = b.output("color", VEC4)
    u_t = b.uniform("t", FLOAT)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    t = blk.load(FLOAT, u_t)
    one = b.float_const(1.0)
    inv = blk.fsub(one, t)
    r = blk.fmul(t, b.float_const(0.25 * (variant + 1)))
    g = blk.fmul(inv, b.float_const(0.5))
    bl = blk.fadd(r, g)
    rg = blk.emit(Op.CompositeConstruct, b.type_id(VEC2), [r, g])
    g_again = blk.emit(Op.CompositeExtract, b.type_id(FLOAT), [rg, 1])
    out_component = tys.PointerType(tys.StorageClass.OUTPUT, FLOAT)
    for index, value in enumerate((r, g_again, bl, one)):
        slot = blk.access_chain(out_component, out, [b.int_const(index)])
        blk.store(slot, value)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"vec_blend_{variant}", b.build(), {"t": 0.75})


def _ref_call_helper(variant: int) -> CorpusProgram:
    """main calls a two-parameter helper twice."""
    b = ModuleBuilder()
    out = b.output("out_val", INT)
    u_k = b.uniform("k", INT)

    helper = b.function("weight", INT, [INT, INT])
    ha, hb = helper.param_ids()
    hblk = helper.block()
    prod = hblk.imul(ha, hb)
    total = hblk.iadd(prod, b.int_const(variant))
    hblk.ret_value(total)

    f = b.function("main", tys.VoidType())
    blk = f.block()
    k = blk.load(INT, u_k)
    first = blk.call(INT, helper.result_id, [k, b.int_const(3)])
    second = blk.call(INT, helper.result_id, [first, k])
    blk.store(out, second)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"call_helper_{variant}", b.build(), {"k": 6})


def _ref_discard(variant: int) -> CorpusProgram:
    """Discards the fragment (OpKill) inside a radius; kill block is
    non-empty on purpose (see module docstring)."""
    b = ModuleBuilder()
    out = b.output("color", FLOAT)
    coord = b.global_variable("frag_coord", tys.VectorType(INT, 2), tys.StorageClass.INPUT)
    u_r2 = b.uniform("r2", INT)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    kill_block = f.block()
    keep = f.block()
    xy = entry.load(tys.VectorType(INT, 2), coord)
    x = entry.emit(Op.CompositeExtract, b.type_id(INT), [xy, 0])
    y = entry.emit(Op.CompositeExtract, b.type_id(INT), [xy, 1])
    xx = entry.imul(x, x)
    yy = entry.imul(y, y)
    d2 = entry.iadd(xx, yy)
    r2 = entry.load(INT, u_r2)
    inside = entry.slt(d2, r2)
    entry.branch_cond(inside, kill_block.label_id, keep.label_id)
    if variant == 0:
        # An *empty* kill block behind a live conditional edge: the exact
        # shape some drivers mis-handle (simplifycfg-kill-drop); fuzzer
        # transformations that add instructions to it flip the behaviour.
        kill_block.kill()
    else:
        kill_block.store(out, b.float_const(0.0))
        kill_block.kill()
    shade = keep.emit(Op.ConvertSToF, b.type_id(FLOAT), [d2])
    scaled = keep.fmul(shade, b.float_const(0.125 * (variant + 1)))
    keep.store(out, scaled)
    keep.ret()
    b.entry_point(f.result_id)
    # Variant 0 is dynamically discarded on its input (the kill path is
    # live); higher variants land outside the radius and keep shading.
    coord_input = [1, 1] if variant == 0 else [variant + 1, 2]
    return CorpusProgram(
        f"discard_{variant}", b.build(), {"frag_coord": coord_input, "r2": 3}
    )


def _ref_array_sum(length: int) -> CorpusProgram:
    """Fill a local array through access chains, then fold it."""
    b = ModuleBuilder()
    out = b.output("folded", INT)
    u_seed = b.uniform("seed", INT)
    arr_ty = tys.ArrayType(INT, length)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    arr_var = entry.local_variable(arr_ty)
    acc_var = entry.local_variable(INT)
    seed = entry.load(INT, u_seed)
    elem_ptr_ty = tys.PointerType(tys.StorageClass.FUNCTION, INT)
    for i in range(length):
        ci = b.int_const(i)
        slot = entry.access_chain(elem_ptr_ty, arr_var, [ci])
        value = entry.imul(seed, b.int_const(i + 1))
        entry.store(slot, value)
    entry.store(acc_var, b.int_const(0))
    n = b.int_const(length)

    def body(body_blk: BlockBuilder, i_val: int) -> None:
        slot = body_blk.access_chain(elem_ptr_ty, arr_var, [i_val])
        value = body_blk.load(INT, slot)
        acc = body_blk.load(INT, acc_var)
        body_blk.store(acc_var, body_blk.iadd(acc, value))

    exit_block = _counted_loop(b, f, entry, n, body)
    final = exit_block.load(INT, acc_var)
    exit_block.store(out, final)
    exit_block.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"array_sum_{length}", b.build(), {"seed": 5})


def _ref_struct_pack(variant: int) -> CorpusProgram:
    """A flat struct local written and read member-wise."""
    b = ModuleBuilder()
    out_i = b.output("packed_int", INT)
    out_f = b.output("packed_float", FLOAT)
    u_k = b.uniform("k", INT)
    struct_ty = tys.StructType((INT, FLOAT))
    f = b.function("main", tys.VoidType())
    blk = f.block()
    box = blk.local_variable(struct_ty)
    k = blk.load(INT, u_k)
    int_ptr = tys.PointerType(tys.StorageClass.FUNCTION, INT)
    float_ptr = tys.PointerType(tys.StorageClass.FUNCTION, FLOAT)
    slot0 = blk.access_chain(int_ptr, box, [b.int_const(0)])
    slot1 = blk.access_chain(float_ptr, box, [b.int_const(1)])
    blk.store(slot0, blk.imul(k, b.int_const(variant + 2)))
    kf = blk.emit(Op.ConvertSToF, b.type_id(FLOAT), [k])
    blk.store(slot1, blk.fmul(kf, b.float_const(1.5)))
    whole = blk.load(struct_ty, box)
    member0 = blk.emit(Op.CompositeExtract, b.type_id(INT), [whole, 0])
    member1 = blk.emit(Op.CompositeExtract, b.type_id(FLOAT), [whole, 1])
    blk.store(out_i, member0)
    blk.store(out_f, member1)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"struct_pack_{variant}", b.build(), {"k": 9})


def _ref_select_ladder(variant: int) -> CorpusProgram:
    """Branch-free selection chains."""
    b = ModuleBuilder()
    out = b.output("sel", INT)
    u_k = b.uniform("k", INT)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    k = blk.load(INT, u_k)
    low = blk.slt(k, b.int_const(0))
    clamped = blk.emit(Op.Select, b.type_id(INT), [low, b.int_const(0), k])
    high = blk.binop(Op.SGreaterThan, BOOL, clamped, b.int_const(50 + variant))
    final = blk.emit(
        Op.Select, b.type_id(INT), [high, b.int_const(50 + variant), clamped]
    )
    doubled = blk.imul(final, b.int_const(2))
    blk.store(out, doubled)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"select_ladder_{variant}", b.build(), {"k": 61})


def _ref_nested_loop(outer: int, inner: int) -> CorpusProgram:
    """Two nested counted loops updating an accumulator."""
    b = ModuleBuilder()
    out = b.output("grid", INT)
    u_m = b.uniform("m", INT)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    acc_var = entry.local_variable(INT)
    j_var = entry.local_variable(INT)
    entry.store(acc_var, b.int_const(0))
    m = entry.load(INT, u_m)
    c0, c1 = b.int_const(0), b.int_const(1)
    n_inner = b.int_const(inner)

    outer_header = f.block()
    inner_header = f.block()
    inner_body = f.block()
    inner_exit = f.block()
    outer_exit = f.block()
    i_var = entry.local_variable(INT)
    entry.store(i_var, c0)
    entry.branch(outer_header.label_id)

    i_val = outer_header.load(INT, i_var)
    outer_cond = outer_header.slt(i_val, m)
    outer_header.branch_cond(outer_cond, inner_header.label_id, outer_exit.label_id)
    # (Re)start the inner counter each outer iteration.
    j0 = inner_header.load(INT, j_var)
    inner_cond = inner_header.slt(j0, n_inner)
    inner_header.branch_cond(inner_cond, inner_body.label_id, inner_exit.label_id)
    i_b = inner_body.load(INT, i_var)
    j_b = inner_body.load(INT, j_var)
    cell = inner_body.imul(i_b, j_b)
    acc = inner_body.load(INT, acc_var)
    inner_body.store(acc_var, inner_body.iadd(acc, cell))
    inner_body.store(j_var, inner_body.iadd(j_b, c1))
    inner_body.branch(inner_header.label_id)
    inner_exit.store(j_var, c0)
    i_next = inner_exit.load(INT, i_var)
    inner_exit.store(i_var, inner_exit.iadd(i_next, c1))
    inner_exit.branch(outer_header.label_id)
    final = outer_exit.load(INT, acc_var)
    outer_exit.store(out, final)
    outer_exit.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"nested_loop_{outer}x{inner}", b.build(), {"m": outer})


def _ref_float_iter(variant: int) -> CorpusProgram:
    """Iterated float update with an early exit (mandelbrot-flavoured)."""
    b = ModuleBuilder()
    out = b.output("escape", INT)
    u_c = b.uniform("c", FLOAT)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    z_var = entry.local_variable(FLOAT)
    n_var = entry.local_variable(INT)
    entry.store(z_var, b.float_const(0.0))
    entry.store(n_var, b.int_const(0))
    header = f.block()
    body = f.block()
    exit_block = f.block()
    entry.branch(header.label_id)
    n_val = header.load(INT, n_var)
    z_val = header.load(FLOAT, z_var)
    more = header.slt(n_val, b.int_const(8 + variant))
    small = header.binop(Op.FOrdLessThan, BOOL, z_val, b.float_const(4.0))
    both = header.binop(Op.LogicalAnd, BOOL, more, small)
    header.branch_cond(both, body.label_id, exit_block.label_id)
    z_b = body.load(FLOAT, z_var)
    c_val = body.load(FLOAT, u_c)
    zz = body.fmul(z_b, z_b)
    z_next = body.fadd(zz, c_val)
    body.store(z_var, z_next)
    n_b = body.load(INT, n_var)
    body.store(n_var, body.iadd(n_b, b.int_const(1)))
    body.branch(header.label_id)
    n_final = exit_block.load(INT, n_var)
    exit_block.store(out, n_final)
    exit_block.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"float_iter_{variant}", b.build(), {"c": 0.3})


def _ref_flag_choice(variant: int) -> CorpusProgram:
    """Constant stores on both sides of a branch: after mem2reg this is a
    two-predecessor phi whose incoming values both dominate the join — the
    exact shape that exposes layout-sensitive phi pairing (Figure 8b)."""
    b = ModuleBuilder()
    out = b.output("flagged", INT)
    u_k = b.uniform("k", INT)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    then_b = f.block()
    else_b = f.block()
    join = f.block()
    x_var = entry.local_variable(INT)
    k = entry.load(INT, u_k)
    cond = entry.slt(k, b.int_const(10))
    entry.branch_cond(cond, then_b.label_id, else_b.label_id)
    then_b.store(x_var, b.int_const(7 + variant))
    then_b.branch(join.label_id)
    else_b.store(x_var, b.int_const(90 + variant))
    else_b.branch(join.label_id)
    x = join.load(INT, x_var)
    shifted = join.iadd(x, k)
    join.store(out, shifted)
    join.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"flag_choice_{variant}", b.build(), {"k": 4})


def _ref_phi_loop(bound: int) -> CorpusProgram:
    """An SSA-form counted loop: the induction variable and accumulator are
    phis rather than memory, so the loop condition's operands are the phi and
    a value defined before the loop — the precondition
    ``PropagateInstructionUp`` needs to replicate Figure 8a."""
    b = ModuleBuilder()
    out = b.output("total", INT)
    u_n = b.uniform("n", INT)
    f = b.function("main", tys.VoidType())
    entry = f.block()
    header = f.block()
    body = f.block()
    exit_block = f.block()
    c0, c1 = b.int_const(0), b.int_const(1)
    n = entry.load(INT, u_n)
    entry.branch(header.label_id)
    # Forward references to body-defined ids are legal inside phis; use 0 as
    # a placeholder and patch once the body ids exist.
    i_phi = header.phi(INT, [(c0, entry.label_id), (0, body.label_id)])
    acc_phi = header.phi(INT, [(c0, entry.label_id), (0, body.label_id)])
    cond = header.slt(i_phi, n)
    header.branch_cond(cond, body.label_id, exit_block.label_id)
    term = body.imul(i_phi, i_phi)
    acc_next = body.iadd(acc_phi, term)
    i_next = body.iadd(i_phi, c1)
    body.branch(header.label_id)
    # Patch the forward phi operands now that the ids exist.
    header_block = f.function.blocks[1]
    header_block.instructions[0].operands[2] = i_next
    header_block.instructions[1].operands[2] = acc_next
    exit_block.store(out, acc_phi)
    exit_block.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"phi_loop_{bound}", b.build(), {"n": bound})


def reference_programs() -> list[CorpusProgram]:
    """The 21 reference programs (fuzzing seeds)."""
    programs = [
        _ref_arith_mix(0),
        _ref_arith_mix(1),
        _ref_flag_choice(0),
        _ref_loop_sum(5),
        _ref_phi_loop(6),
        _ref_branchy(0),
        _ref_branchy(2),
        _ref_branchy(5),
        _ref_vec_blend(0),
        _ref_vec_blend(1),
        _ref_call_helper(0),
        _ref_call_helper(3),
        _ref_discard(0),
        _ref_discard(2),
        _ref_array_sum(4),
        _ref_array_sum(6),
        _ref_struct_pack(0),
        _ref_select_ladder(0),
        _ref_select_ladder(4),
        _ref_nested_loop(3, 4),
        _ref_float_iter(1),
    ]
    assert len(programs) == 21
    return programs


# -- donors ---------------------------------------------------------------------


def _donor_math(variant: int) -> CorpusProgram:
    """Scalar math helpers: iabs / ilerp-style functions."""
    b = ModuleBuilder()
    out = b.output("unused", INT)

    iabs = b.function(f"iabs_{variant}", INT, [INT])
    (p,) = iabs.param_ids()
    blk = iabs.block()
    neg = blk.slt(p, b.int_const(0))
    flipped = blk.emit(Op.SNegate, b.type_id(INT), [p])
    result = blk.emit(Op.Select, b.type_id(INT), [neg, flipped, p])
    shifted = blk.iadd(result, b.int_const(variant))
    blk.ret_value(shifted)

    mix = b.function(f"imix_{variant}", INT, [INT, INT])
    ma, mb = mix.param_ids()
    mblk = mix.block()
    s = mblk.iadd(ma, mb)
    h = mblk.sdiv(s, b.int_const(2))
    mblk.ret_value(h)

    f = b.function("main", tys.VoidType())
    blk = f.block()
    v = blk.call(INT, iabs.result_id, [b.int_const(-7 - variant)])
    w = blk.call(INT, mix.result_id, [v, b.int_const(4)])
    blk.store(out, w)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"donor_math_{variant}", b.build())


def _donor_poly(variant: int) -> CorpusProgram:
    """Polynomial evaluation helper (float)."""
    b = ModuleBuilder()
    out = b.output("unused", FLOAT)
    poly = b.function(f"poly_{variant}", FLOAT, [FLOAT])
    (x,) = poly.param_ids()
    blk = poly.block()
    x2 = blk.fmul(x, x)
    term = blk.fmul(x2, b.float_const(0.5 + variant))
    y = blk.fadd(term, x)
    z = blk.fsub(y, b.float_const(0.125))
    blk.ret_value(z)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    v = blk.call(FLOAT, poly.result_id, [b.float_const(1.5)])
    blk.store(out, v)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"donor_poly_{variant}", b.build())


def _donor_clamp(variant: int) -> CorpusProgram:
    """Branching clamp helper."""
    b = ModuleBuilder()
    out = b.output("unused", INT)
    clamp = b.function(f"clamp_{variant}", INT, [INT, INT])
    lo_in, value = clamp.param_ids()
    entry = clamp.block()
    low = clamp.block()
    ok = clamp.block()
    is_low = entry.slt(value, lo_in)
    entry.branch_cond(is_low, low.label_id, ok.label_id)
    low.ret_value(lo_in)
    bumped = ok.iadd(value, b.int_const(variant))
    ok.ret_value(bumped)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    v = blk.call(INT, clamp.result_id, [b.int_const(0), b.int_const(-3)])
    blk.store(out, v)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"donor_clamp_{variant}", b.build())


def _donor_accumulate(variant: int) -> CorpusProgram:
    """Loop-carrying helper (exercises live-safe loop limiting)."""
    b = ModuleBuilder()
    out = b.output("unused", INT)
    accumulate = b.function(f"accumulate_{variant}", INT, [INT])
    (n,) = accumulate.param_ids()
    entry = accumulate.block()
    acc_var = entry.local_variable(INT)
    entry.store(acc_var, b.int_const(variant))

    def body(body_blk: BlockBuilder, i_val: int) -> None:
        acc = body_blk.load(INT, acc_var)
        body_blk.store(acc_var, body_blk.iadd(acc, i_val))

    fb = FunctionBuilder(b, accumulate.function)
    exit_block = _counted_loop(b, fb, entry, n, body)
    result = exit_block.load(INT, acc_var)
    exit_block.ret_value(result)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    v = blk.call(INT, accumulate.result_id, [b.int_const(4)])
    blk.store(out, v)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"donor_accumulate_{variant}", b.build())


def _donor_vec(variant: int) -> CorpusProgram:
    """vec2 helper built from components."""
    b = ModuleBuilder()
    out = b.output("unused", FLOAT)
    dot2 = b.function(f"dot2_{variant}", FLOAT, [FLOAT, FLOAT])
    va, vb = dot2.param_ids()
    blk = dot2.block()
    v = blk.emit(Op.CompositeConstruct, b.type_id(VEC2), [va, vb])
    x = blk.emit(Op.CompositeExtract, b.type_id(FLOAT), [v, 0])
    y = blk.emit(Op.CompositeExtract, b.type_id(FLOAT), [v, 1])
    xx = blk.fmul(x, x)
    yy = blk.fmul(y, y)
    d = blk.fadd(xx, yy)
    scaled = blk.fmul(d, b.float_const(1.0 + 0.25 * variant))
    blk.ret_value(scaled)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    v = blk.call(FLOAT, dot2.result_id, [b.float_const(0.5), b.float_const(1.5)])
    blk.store(out, v)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"donor_vec_{variant}", b.build())


def _donor_parity(variant: int) -> CorpusProgram:
    """Even/odd selector with a phi."""
    b = ModuleBuilder()
    out = b.output("unused", INT)
    parity = b.function(f"parity_{variant}", INT, [INT])
    (n,) = parity.param_ids()
    entry = parity.block()
    even_b = parity.block()
    odd_b = parity.block()
    join = parity.block()
    two = b.int_const(2)
    rem = entry.binop(Op.SRem, INT, n, two)
    is_even = entry.ieq(rem, b.int_const(0))
    entry.branch_cond(is_even, even_b.label_id, odd_b.label_id)
    ev = even_b.sdiv(n, two)
    even_b.branch(join.label_id)
    od = odd_b.imul(n, b.int_const(3 + variant))
    odd_b.branch(join.label_id)
    merged = join.phi(INT, [(ev, even_b.label_id), (od, odd_b.label_id)])
    join.ret_value(merged)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    v = blk.call(INT, parity.result_id, [b.int_const(11)])
    blk.store(out, v)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"donor_parity_{variant}", b.build())


def _donor_wrap(variant: int) -> CorpusProgram:
    """Modular wrap helper using only wrapping arithmetic."""
    b = ModuleBuilder()
    out = b.output("unused", INT)
    wrap = b.function(f"wrap_{variant}", INT, [INT, INT])
    value, modulus = wrap.param_ids()
    blk = wrap.block()
    shifted = blk.iadd(value, modulus)
    rem = blk.binop(Op.SRem, INT, shifted, modulus)
    blk.ret_value(rem)
    f = b.function("main", tys.VoidType())
    blk = f.block()
    v = blk.call(INT, wrap.result_id, [b.int_const(-2 - variant), b.int_const(7)])
    blk.store(out, v)
    blk.ret()
    b.entry_point(f.result_id)
    return CorpusProgram(f"donor_wrap_{variant}", b.build())


def donor_programs() -> list[CorpusProgram]:
    """The 43 donor programs whose functions seed ``AddFunction``."""
    donors: list[CorpusProgram] = []
    for variant in range(8):
        donors.append(_donor_math(variant))
    for variant in range(7):
        donors.append(_donor_poly(variant))
    for variant in range(7):
        donors.append(_donor_clamp(variant))
    for variant in range(7):
        donors.append(_donor_accumulate(variant))
    for variant in range(7):
        donors.append(_donor_vec(variant))
    for variant in range(4):
        donors.append(_donor_parity(variant))
    for variant in range(3):
        donors.append(_donor_wrap(variant))
    assert len(donors) == 43
    return donors
