"""Seed corpus (GraphicsFuzz reference/donor analogue)."""

from repro.corpus.generator import CorpusProgram, donor_programs, reference_programs

__all__ = ["CorpusProgram", "donor_programs", "reference_programs"]
