"""The paper's §2.1 "basic blocks" language.

Every block contains instructions of the form ``x := y``, ``x := y1 + y2``
or ``print(y)``, and ends by branching unconditionally to one successor or
conditionally to two based on a boolean variable.  Operands are variables or
integer/boolean literals.  This package exists to reproduce the paper's
worked example (Figures 4–6) and to show the transformation protocol is not
IR-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

Operand = str | int | bool  # a variable name or a literal


@dataclass(frozen=True)
class Instr:
    """``target := a [+ b]`` or ``print(a)`` (``target=None``)."""

    target: str | None
    a: Operand
    b: Operand | None = None

    @property
    def is_print(self) -> bool:
        return self.target is None

    def __str__(self) -> str:
        if self.is_print:
            return f"print({self.a})"
        if self.b is None:
            return f"{self.target} := {self.a}"
        return f"{self.target} := {self.a} + {self.b}"


def assign(target: str, a: Operand) -> Instr:
    return Instr(target, a)


def add(target: str, a: Operand, b: Operand) -> Instr:
    return Instr(target, a, b)


def print_(a: Operand) -> Instr:
    return Instr(None, a)


@dataclass(frozen=True)
class Goto:
    target: str

    def successors(self) -> list[str]:
        return [self.target]


@dataclass(frozen=True)
class CondGoto:
    """Branch to ``if_true`` when variable ``cond`` holds, else ``if_false``
    (the paper draws these as edges labelled ``v`` and ``!v``)."""

    cond: str
    if_true: str
    if_false: str

    def successors(self) -> list[str]:
        return [self.if_true, self.if_false]


@dataclass(frozen=True)
class Halt:
    def successors(self) -> list[str]:
        return []


Terminator = Goto | CondGoto | Halt


@dataclass
class BBlock:
    instructions: list[Instr] = field(default_factory=list)
    terminator: Terminator = field(default_factory=Halt)


@dataclass
class Program:
    """A "basic blocks" program: named blocks plus an entry label."""

    blocks: dict[str, BBlock] = field(default_factory=dict)
    entry: str = "a"

    def block(self, label: str) -> BBlock:
        return self.blocks[label]

    def has_block(self, label: str) -> bool:
        return label in self.blocks

    def clone(self) -> "Program":
        return Program(
            {
                label: BBlock(list(b.instructions), b.terminator)
                for label, b in self.blocks.items()
            },
            self.entry,
        )

    def variables(self) -> set[str]:
        names: set[str] = set()
        for block in self.blocks.values():
            for inst in block.instructions:
                if inst.target is not None:
                    names.add(inst.target)
                for operand in (inst.a, inst.b):
                    if isinstance(operand, str):
                        names.add(operand)
            if isinstance(block.terminator, CondGoto):
                names.add(block.terminator.cond)
        return names

    def size(self) -> int:
        return sum(len(b.instructions) + 1 for b in self.blocks.values())

    def pretty(self) -> str:
        lines = []
        for label, block in self.blocks.items():
            lines.append(f"{label}:")
            for inst in block.instructions:
                lines.append(f"  {inst}")
            term = block.terminator
            if isinstance(term, Goto):
                lines.append(f"  goto {term.target}")
            elif isinstance(term, CondGoto):
                lines.append(f"  if {term.cond} goto {term.if_true} else {term.if_false}")
            else:
                lines.append("  halt")
        return "\n".join(lines)


class BasicBlocksError(Exception):
    """Raised on malformed programs or failed executions."""


def execute(
    program: Program, inputs: dict[str, int | bool], *, fuel: int = 10_000
) -> list[int | bool]:
    """Run *program* on *inputs*, returning the printed output."""
    env: dict[str, int | bool] = dict(inputs)
    output: list[int | bool] = []
    label = program.entry

    def value(operand: Operand) -> int | bool:
        if isinstance(operand, str):
            if operand not in env:
                raise BasicBlocksError(f"read of undefined variable {operand!r}")
            return env[operand]
        return operand

    while True:
        if not program.has_block(label):
            raise BasicBlocksError(f"jump to unknown block {label!r}")
        block = program.block(label)
        for inst in block.instructions:
            fuel -= 1
            if fuel <= 0:
                raise BasicBlocksError("fuel exhausted")
            if inst.is_print:
                output.append(value(inst.a))
            elif inst.b is None:
                assert inst.target is not None
                env[inst.target] = value(inst.a)
            else:
                assert inst.target is not None
                env[inst.target] = int(value(inst.a)) + int(value(inst.b))
        term = block.terminator
        fuel -= 1
        if fuel <= 0:
            raise BasicBlocksError("fuel exhausted")
        if isinstance(term, Goto):
            label = term.target
        elif isinstance(term, CondGoto):
            cond = value(term.cond)
            if not isinstance(cond, bool):
                raise BasicBlocksError(f"branch on non-boolean {term.cond!r}")
            label = term.if_true if cond else term.if_false
        else:
            return output


def figure4_program() -> tuple[Program, dict[str, int | bool]]:
    """The paper's Figure 4 original program and input.

    One block ``a``::

        s := i + j
        t := s + s
        print(t)

    with input i=1, j=2, k=true; it prints 6.
    """
    program = Program(
        blocks={
            "a": BBlock(
                [add("s", "i", "j"), add("t", "s", "s"), print_("t")], Halt()
            )
        },
        entry="a",
    )
    return program, {"i": 1, "j": 2, "k": True}


_ = replace  # dataclasses.replace is part of this module's public surface
