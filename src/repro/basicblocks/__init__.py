"""The paper's §2.1 basic-blocks language, Table 1 transformations, and the
toy compiler used to execute the Figures 4–5 walkthrough."""

from repro.basicblocks.lang import (
    BasicBlocksError,
    BBlock,
    CondGoto,
    Goto,
    Halt,
    Instr,
    Program,
    add,
    assign,
    execute,
    figure4_program,
    print_,
)
from repro.basicblocks.transformations import (
    AddDeadBlock,
    AddLoad,
    AddStore,
    BBContext,
    BBTransformation,
    ChangeRHS,
    SplitBlock,
    ToyCompiler,
    ToyCompilerCrash,
    apply_sequence,
)

__all__ = [
    "AddDeadBlock",
    "AddLoad",
    "AddStore",
    "BBContext",
    "BBTransformation",
    "BBlock",
    "BasicBlocksError",
    "ChangeRHS",
    "CondGoto",
    "Goto",
    "Halt",
    "Instr",
    "Program",
    "SplitBlock",
    "ToyCompiler",
    "ToyCompilerCrash",
    "add",
    "apply_sequence",
    "assign",
    "execute",
    "figure4_program",
    "print_",
]
