"""Table 1's transformation templates for the basic-blocks language, plus a
toy buggy compiler so the paper's Figures 4–5 reduction walkthrough can be
executed for real.

``SplitBlock`` deliberately keeps the paper's (block, offset) parameterisation
so the §2.3 independence discussion can be demonstrated; the IR-level
``SplitBlock`` in :mod:`repro.core` uses the improved instruction-id design.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.basicblocks.lang import (
    BBlock,
    CondGoto,
    Goto,
    Halt,
    Instr,
    Operand,
    Program,
    assign,
    execute,
)


@dataclass
class BBContext:
    """A transformation context ``(P, I, F)`` for basic-blocks programs; the
    fact set is the collection of "block is dead" facts."""

    program: Program
    inputs: dict[str, int | bool] = field(default_factory=dict)
    dead_blocks: set[str] = field(default_factory=set)

    @classmethod
    def start(cls, program: Program, inputs: dict[str, int | bool]) -> "BBContext":
        return cls(program.clone(), dict(inputs))

    def known_names(self) -> set[str]:
        return self.program.variables() | set(self.inputs)

    def is_fresh_block(self, label: str) -> bool:
        return not self.program.has_block(label)

    def is_fresh_variable(self, name: str) -> bool:
        return name not in self.known_names()


class BBTransformation(abc.ABC):
    """A Table 1 transformation: (Type, Pre, Effect)."""

    type_name: str = ""

    @abc.abstractmethod
    def precondition(self, ctx: BBContext) -> bool:
        raise NotImplementedError

    @abc.abstractmethod
    def apply(self, ctx: BBContext) -> None:
        raise NotImplementedError


def apply_sequence(ctx: BBContext, transformations: Sequence[BBTransformation]) -> list[bool]:
    """Definition 2.5 for basic-blocks transformations."""
    applied = []
    for transformation in transformations:
        if transformation.precondition(ctx):
            transformation.apply(ctx)
            applied.append(True)
        else:
            applied.append(False)
    return applied


@dataclass
class SplitBlock(BBTransformation):
    """Instructions ``b[o]`` onward move to new block ``f``."""

    type_name = "SplitBlock"

    block: str
    offset: int
    fresh_block: str

    def precondition(self, ctx: BBContext) -> bool:
        if not ctx.program.has_block(self.block):
            return False
        if not ctx.is_fresh_block(self.fresh_block):
            return False
        return 0 <= self.offset <= len(ctx.program.block(self.block).instructions)

    def apply(self, ctx: BBContext) -> None:
        block = ctx.program.block(self.block)
        tail = BBlock(block.instructions[self.offset :], block.terminator)
        block.instructions = block.instructions[: self.offset]
        block.terminator = Goto(self.fresh_block)
        ctx.program.blocks[self.fresh_block] = tail
        if self.block in ctx.dead_blocks:
            ctx.dead_blocks.add(self.fresh_block)


@dataclass
class AddDeadBlock(BBTransformation):
    """``f2 := true`` is appended to *block*, which then conditionally
    branches to its original successor or new dead block ``f1``; records the
    fact "``f1`` is dead"."""

    type_name = "AddDeadBlock"

    block: str
    fresh_block: str
    fresh_variable: str

    def precondition(self, ctx: BBContext) -> bool:
        if not ctx.program.has_block(self.block):
            return False
        if not isinstance(ctx.program.block(self.block).terminator, Goto):
            return False
        if not ctx.is_fresh_block(self.fresh_block):
            return False
        return ctx.is_fresh_variable(self.fresh_variable)

    def apply(self, ctx: BBContext) -> None:
        block = ctx.program.block(self.block)
        successor = block.terminator.target  # type: ignore[union-attr]
        ctx.program.blocks[self.fresh_block] = BBlock([], Goto(successor))
        block.instructions.append(assign(self.fresh_variable, True))
        block.terminator = CondGoto(self.fresh_variable, successor, self.fresh_block)
        ctx.dead_blocks.add(self.fresh_block)


@dataclass
class AddLoad(BBTransformation):
    """``f := x`` may be inserted at any program point."""

    type_name = "AddLoad"

    block: str
    offset: int
    fresh_variable: str
    source: str

    def precondition(self, ctx: BBContext) -> bool:
        if not ctx.program.has_block(self.block):
            return False
        if not ctx.is_fresh_variable(self.fresh_variable):
            return False
        if self.source not in ctx.known_names():
            return False
        return 0 <= self.offset <= len(ctx.program.block(self.block).instructions)

    def apply(self, ctx: BBContext) -> None:
        block = ctx.program.block(self.block)
        block.instructions.insert(self.offset, assign(self.fresh_variable, self.source))


@dataclass
class AddStore(BBTransformation):
    """``x1 := x2`` inserted into a block known (via fact) to be dead."""

    type_name = "AddStore"

    block: str
    offset: int
    target: str
    source: str

    def precondition(self, ctx: BBContext) -> bool:
        if self.block not in ctx.dead_blocks:
            return False
        if not ctx.program.has_block(self.block):
            return False
        names = ctx.known_names()
        if self.target not in names or self.source not in names:
            return False
        return 0 <= self.offset <= len(ctx.program.block(self.block).instructions)

    def apply(self, ctx: BBContext) -> None:
        block = ctx.program.block(self.block)
        block.instructions.insert(self.offset, assign(self.target, self.source))


@dataclass
class ChangeRHS(BBTransformation):
    """``b[o]`` has the form ``y := z`` with literal ``z``; replace ``z``
    with input variable ``x`` whose bound value equals ``z`` (the "guaranteed
    equal" precondition of Table 1)."""

    type_name = "ChangeRHS"

    block: str
    offset: int
    variable: str

    def precondition(self, ctx: BBContext) -> bool:
        if not ctx.program.has_block(self.block):
            return False
        block = ctx.program.block(self.block)
        if not 0 <= self.offset < len(block.instructions):
            return False
        inst = block.instructions[self.offset]
        if inst.is_print or inst.b is not None:
            return False
        if isinstance(inst.a, str):
            return False
        if self.variable not in ctx.inputs:
            return False
        return ctx.inputs[self.variable] == inst.a and type(
            ctx.inputs[self.variable]
        ) is type(inst.a)

    def apply(self, ctx: BBContext) -> None:
        block = ctx.program.block(self.block)
        inst = block.instructions[self.offset]
        block.instructions[self.offset] = Instr(inst.target, self.variable)


# -- the toy compiler under test ------------------------------------------------------


class ToyCompilerCrash(Exception):
    """The toy compiler's injected defect fired."""


class ToyCompiler:
    """A hypothetical basic-blocks compiler with the bug §2.1 supposes:
    it crashes on a conditional branch whose condition cannot be statically
    resolved to a boolean literal (i.e. a dead block whose deadness has been
    obfuscated).  Triggering it requires adding a dead block *and* obscuring
    the constant condition — the minimized sequence T1, T2, T5 of Figure 5.
    """

    def run(self, program: Program, inputs: dict[str, int | bool]) -> list[int | bool]:
        for label, block in program.blocks.items():
            terminator = block.terminator
            if isinstance(terminator, CondGoto):
                if not self._statically_true_or_false(program, terminator.cond):
                    raise ToyCompilerCrash(
                        "branch_folding.cpp:17: cannot statically evaluate "
                        f"branch condition {terminator.cond!r} in block {label!r}"
                    )
        return execute(program, inputs)

    def _statically_true_or_false(self, program: Program, cond: str) -> bool:
        for block in program.blocks.values():
            for inst in block.instructions:
                if inst.target == cond:
                    if inst.b is None and isinstance(inst.a, bool):
                        return True
                    return False
        return False


__all__ = [
    "AddDeadBlock",
    "AddLoad",
    "AddStore",
    "BBContext",
    "BBTransformation",
    "ChangeRHS",
    "SplitBlock",
    "ToyCompiler",
    "ToyCompilerCrash",
    "apply_sequence",
]
_ = Halt, Operand  # re-exported for tests
