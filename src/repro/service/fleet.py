"""The shared worker fleet: long-lived fork workers that execute seed
batches for whichever campaign the scheduler grants them.

Each worker is a loop over its pipe: receive ``("batch", campaign, index,
spec, seeds)``, run every seed on a harness built from the spec, stream
one ``("seed", ...)`` message per completed seed (the engine's heartbeat
*and* its journal feed), then ``("done", ...)`` with the batch's probe
count.  The harness is cached per campaign — the same one-harness-many-
seeds shape as a direct ``run_campaign`` — because seed runs are
independent: each record stays a pure function of ``(spec, seed)``
regardless of which seeds shared the harness before it.  The cache is
dropped on any batch error, and a batch re-executed after a lease expiry
or worker death always lands on a freshly spawned worker, so at-least-once
delivery composes with the journal's seed-keyed dedup into exactly-once,
byte-identical results.

Determinism guard: the worker strips ``quarantine_after`` from the spec's
robustness config before building.  A worker-local quarantine would make a
seed's record depend on which *other* seeds shared its batch; the service
instead applies the fault budget post hoc over the journaled faults (see
:mod:`repro.service.engine`).

``SIGTERM`` is an orderly drain (flush the pipe, exit 0) so a draining
service can tell shutdown from a crash; anything else that kills a worker
surfaces to the parent as pipe EOF plus a nonzero exit code.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import os
from dataclasses import dataclass
from typing import Any

from repro.robustness.journal import run_to_record
from repro.robustness.supervisor import _install_drain_handler

_MP_CONTEXT = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else None
)


def _sanitize_spec(spec: Any) -> Any:
    """The spec a fleet worker actually builds: never quarantines locally."""
    robustness = getattr(spec, "robustness", None)
    if robustness is None or robustness.quarantine_after is None:
        return spec
    return dataclasses.replace(
        spec,
        robustness=dataclasses.replace(robustness, quarantine_after=None),
    )


#: Harnesses a worker keeps built at once (campaigns it recently served).
_HARNESS_CACHE_SIZE = 4


def _fleet_worker_main(
    conn: multiprocessing.connection.Connection, worker_id: int
) -> None:
    """Worker loop (runs in the forked child; never returns normally)."""
    _install_drain_handler(conn)
    harnesses: dict[str, Any] = {}  # campaign_id -> harness, LRU order

    def close_harness(campaign_id: str) -> None:
        harness = harnesses.pop(campaign_id, None)
        if harness is not None:
            try:
                harness.close()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass

    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            os._exit(0)  # parent went away: nothing left to report to
        if request is None or request[0] == "stop":
            for campaign_id in list(harnesses):
                close_harness(campaign_id)
            try:
                conn.close()
            except OSError:
                pass
            os._exit(0)
        if request[0] != "batch":  # pragma: no cover - protocol bug
            continue
        _, campaign_id, batch_index, spec, seeds = request
        try:
            harness = harnesses.pop(campaign_id, None)
            if harness is None:
                harness = _sanitize_spec(spec).build()
            harnesses[campaign_id] = harness  # re-insert: most recent last
            while len(harnesses) > _HARNESS_CACHE_SIZE:
                close_harness(next(iter(harnesses)))
            before = harness.metrics.counter("probes")
            for seed in seeds:
                run = harness.run_seed(seed)
                conn.send(
                    ("seed", campaign_id, batch_index, seed, run_to_record(run))
                )
            probes = harness.metrics.counter("probes") - before
            conn.send(("done", campaign_id, batch_index, probes))
        except (BrokenPipeError, OSError):
            os._exit(0)  # parent is gone mid-batch; work will be re-leased
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            close_harness(campaign_id)  # may be mid-probe; rebuild next time
            try:
                conn.send(
                    (
                        "error",
                        campaign_id,
                        batch_index,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
            except (BrokenPipeError, OSError):
                os._exit(0)


@dataclass
class _FleetWorker:
    worker_id: int
    process: Any
    conn: multiprocessing.connection.Connection
    busy: bool = False


class WorkerFleet:
    """Parent-side handle on the worker pool: spawn, grant, poll, kill.

    The fleet knows nothing about campaigns or leases — it moves batches
    and messages.  Policy (who gets which batch, what expiry means) lives
    in :class:`repro.service.engine.CampaignService`.
    """

    def __init__(self, size: int = 2) -> None:
        self.size = max(1, int(size))
        self._workers: dict[int, _FleetWorker] = {}
        self._next_id = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        while len(self._workers) < self.size:
            self.spawn()

    def spawn(self) -> int:
        worker_id = self._next_id
        self._next_id += 1
        parent_conn, child_conn = _MP_CONTEXT.Pipe()
        process = _MP_CONTEXT.Process(
            target=_fleet_worker_main,
            args=(child_conn, worker_id),
            daemon=True,
            name=f"fleet-{worker_id}",
        )
        process.start()
        child_conn.close()
        self._workers[worker_id] = _FleetWorker(worker_id, process, parent_conn)
        return worker_id

    def kill(self, worker_id: int) -> None:
        """SIGKILL a worker (used on lease expiry) and reap it."""
        worker = self._workers.pop(worker_id, None)
        if worker is None:
            return
        try:
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=2.0)
        except (ValueError, OSError):  # pragma: no cover - already gone
            pass
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def stop(self, *, drain: bool = True) -> None:
        """Shut the fleet down: politely (stop sentinel, join) when
        draining, SIGKILL otherwise; stragglers are killed either way."""
        for worker in list(self._workers.values()):
            if drain:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for worker in list(self._workers.values()):
            try:
                worker.process.join(timeout=2.0 if drain else 0.0)
            except (ValueError, OSError):  # pragma: no cover
                pass
        for worker_id in list(self._workers):
            self.kill(worker_id)

    # -- work ----------------------------------------------------------------

    def idle_workers(self) -> list[int]:
        return sorted(
            worker_id
            for worker_id, worker in self._workers.items()
            if not worker.busy and worker.process.is_alive()
        )

    def alive_count(self) -> int:
        return sum(1 for w in self._workers.values() if w.process.is_alive())

    def send_batch(
        self,
        worker_id: int,
        campaign_id: str,
        batch_index: int,
        spec: Any,
        seeds: tuple[int, ...],
    ) -> bool:
        worker = self._workers.get(worker_id)
        if worker is None:
            return False
        try:
            worker.conn.send(("batch", campaign_id, batch_index, spec, seeds))
        except (BrokenPipeError, OSError):
            return False
        worker.busy = True
        return True

    def mark_idle(self, worker_id: int) -> None:
        worker = self._workers.get(worker_id)
        if worker is not None:
            worker.busy = False

    def poll(self, timeout: float) -> list[tuple]:
        """Drain ready worker messages; detect deaths.

        Returns events in arrival order: ``("msg", worker_id, payload)`` for
        each pipe message, ``("dead", worker_id, exitcode)`` for a worker
        whose pipe hit EOF (the worker is reaped and removed; the engine
        decides whether to restart and what to do with its lease).
        """
        events: list[tuple] = []
        conns = {
            worker.conn: worker_id
            for worker_id, worker in self._workers.items()
        }
        if not conns:
            return events
        ready = multiprocessing.connection.wait(
            list(conns), timeout=timeout
        )
        for conn in ready:
            worker_id = conns[conn]
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                worker = self._workers.get(worker_id)
                exitcode = None
                if worker is not None:
                    try:
                        worker.process.join(timeout=2.0)
                        exitcode = worker.process.exitcode
                    except (ValueError, OSError):  # pragma: no cover
                        pass
                self.kill(worker_id)
                events.append(("dead", worker_id, exitcode))
                continue
            events.append(("msg", worker_id, payload))
        return events
