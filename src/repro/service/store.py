"""Durable per-campaign state: the service's single source of truth on disk.

Layout under the store root::

    campaigns/<id>/meta.jsonl      # submit record + every state transition
    campaigns/<id>/journal.jsonl   # CampaignJournal (one sealed line/seed)
    campaigns/<id>/reduce-<k>.jsonl# ReductionJournal per requested reduction
    campaigns/<id>/result.json     # atomic final result (DONE/QUARANTINED)
    http.json                      # bound address of the HTTP API (if any)
    service-trace.jsonl            # service event trace (if enabled)

``meta.jsonl`` uses the same sealed-record discipline as the journals
(:func:`repro.robustness.journal.seal_record`): every line is fsync'd
before the service acts on the transition it records, carries a CRC-32,
and a line torn by ``SIGKILL`` is repaired on the next append.  Loading
folds the record *prefix* up to the first invalid line — a torn tail is
expected and harmless; an invalid line **followed by** valid ones is
interior corruption and :meth:`CampaignStore.check` reports it loudly
rather than merging records across the gap.

``result.json`` is written atomically (tmp + fsync + ``os.replace`` +
directory fsync) and contains **no timestamps or execution statistics**,
so a campaign's result bytes are a pure function of its spec and seeds —
the property the kill/restart chaos tests assert.  The file is one sealed
record (CRC-32 over its canonical JSON), so bit rot that still parses as
JSON is detected instead of silently served.

All durable writes flow through an injectable
:class:`~repro.robustness.chaos.FileOps` seam, so the chaos harness can
make any individual ``open``/``write``/``fsync``/``replace``/dir-fsync
fail with ENOSPC/EIO, land short, or tear at a chosen byte.  A real
directory-fsync failure **propagates** — only open-for-fsync-unsupported
errnos are ignored (see :meth:`FileOps.fsync_dir`) — because swallowing
EIO there would make every durability claim above dishonest.

Long-lived campaigns cannot eat the disk: when ``compact_meta_bytes`` is
set, a meta history that outgrows it is folded into a two-record snapshot
(the submit record plus one state record carrying the full state ``chain``)
written crash-safely — tmp file, fsync, atomic rename, directory fsync.  A
snapshot torn mid-write is invisible (readers never look at the tmp), and
:meth:`check` validates the embedded chain exactly as it validates live
transition records.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
from pathlib import Path

from repro.robustness.chaos import REAL_FILEOPS, FileOps
from repro.robustness.journal import (
    CampaignJournal,
    parse_record,
    seal_record,
)
from repro.service import state as st

META_VERSION = 1


def spec_to_json(spec) -> dict:
    """A JSON-round-trippable form of a :class:`~repro.perf.parallel.
    CampaignSpec` (its ``options``/``robustness`` dataclasses inlined)."""
    return dataclasses.asdict(spec)


def spec_from_json(data: dict):
    """Rebuild the :class:`CampaignSpec` persisted by :func:`spec_to_json`."""
    from repro.core.fuzzer import FuzzerOptions
    from repro.perf.parallel import CampaignSpec
    from repro.robustness import RobustnessConfig

    def tup(value):
        return tuple(value) if value is not None else None

    options = data.get("options")
    robustness = data.get("robustness")
    return CampaignSpec(
        kind=data["kind"],
        target_names=tuple(data["target_names"]),
        reference_names=tup(data.get("reference_names")),
        donor_names=tup(data.get("donor_names")),
        options=FuzzerOptions(**options) if options is not None else None,
        rounds=data.get("rounds", 25),
        optimized_flow=data.get("optimized_flow", True),
        robustness=(
            RobustnessConfig(**robustness) if robustness is not None else None
        ),
        trace=data.get("trace"),
        probe_cache=data.get("probe_cache", False),
        batch_probes=data.get("batch_probes", False),
    )


@dataclasses.dataclass(frozen=True)
class CampaignManifest:
    """The submit record, parsed: everything needed to (re)run a campaign."""

    campaign_id: str
    spec: object  # CampaignSpec
    seeds: tuple[int, ...]
    tenant: str = "default"
    #: How many findings (in deterministic seed order) to reduce in the
    #: REDUCING phase; 0 skips reduction entirely.
    reduce: int = 0
    #: Wall-clock budget in seconds (None = unbounded).  Enforced by the
    #: scheduler loop; exhaustion is a FAILED terminal state, not a kill -9.
    max_seconds: float | None = None
    #: Probe budget (None = unbounded).  Counted from worker-reported batch
    #: probe totals; exhaustion fails the campaign before the next grant.
    max_probes: int | None = None
    #: Reduction pass names for the REDUCING phase (empty = the classic
    #: single-pass ddmin reducer rather than the pass pipeline).
    reduce_passes: tuple[str, ...] = ()


class StoreError(RuntimeError):
    """A store invariant was violated (corruption or a service bug)."""


def _state_chain(record: dict) -> list:
    """The state sequence one meta state record attests: a compacted
    snapshot record carries the whole folded ``chain``; a live transition
    record is a chain of one."""
    chain = record.get("chain")
    if chain:
        return list(chain)
    return [record.get("state")]


class CampaignStore:
    """Filesystem-backed campaign state machine (see module docstring)."""

    def __init__(
        self,
        root: Path | str,
        *,
        fileops: FileOps | None = None,
        compact_meta_bytes: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.fileops = fileops if fileops is not None else REAL_FILEOPS
        #: Auto-compact a campaign's meta history once it outgrows this many
        #: bytes (None = compact only on explicit :meth:`compact_meta`).
        self.compact_meta_bytes = compact_meta_bytes
        self.campaigns_dir = self.root / "campaigns"
        self.campaigns_dir.mkdir(parents=True, exist_ok=True)

    # -- paths ---------------------------------------------------------------

    def campaign_dir(self, campaign_id: str) -> Path:
        if not campaign_id or "/" in campaign_id or campaign_id.startswith("."):
            raise ValueError(f"invalid campaign id {campaign_id!r}")
        return self.campaigns_dir / campaign_id

    def meta_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / "meta.jsonl"

    def journal_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / "journal.jsonl"

    def journal(self, campaign_id: str) -> CampaignJournal:
        return CampaignJournal(
            self.journal_path(campaign_id), fileops=self.fileops
        )

    def reduce_journal_path(self, campaign_id: str, index: int) -> Path:
        return self.campaign_dir(campaign_id) / f"reduce-{index}.jsonl"

    def dedup_journal_path(self, campaign_id: str) -> Path:
        """The finalize-phase streaming-dedup decision log (see
        :class:`repro.core.dedup_scale.DedupJournal`); resume-safe like
        the reduction journals it sits next to."""
        return self.campaign_dir(campaign_id) / "dedup.jsonl"

    def result_path(self, campaign_id: str) -> Path:
        return self.campaign_dir(campaign_id) / "result.json"

    def campaign_ids(self) -> list[str]:
        return sorted(
            entry.name
            for entry in self.campaigns_dir.iterdir()
            if entry.is_dir()
        )

    def exists(self, campaign_id: str) -> bool:
        return self.meta_path(campaign_id).exists()

    def disk_free(self) -> int:
        """Free bytes under the store root (the load-shedding signal); goes
        through the chaos seam so tests can fake a nearly full disk."""
        return self.fileops.disk_free(self.root)

    # -- meta journal --------------------------------------------------------

    def _append_meta(self, campaign_id: str, record: dict) -> None:
        line = seal_record(record)
        fileops = self.fileops
        with fileops.open(self.meta_path(campaign_id), "a+b") as handle:
            if handle.tell() > 0:
                # Truncate a record torn by a mid-write kill (no trailing
                # newline) so the history stays a clean record-per-line
                # prefix — the reduction journal's repair, not the campaign
                # journal's fresh-line one, because meta readers stop at
                # the first invalid line rather than skipping it.
                handle.seek(0)
                data = handle.read()
                if not data.endswith(b"\n"):
                    handle.truncate(data.rfind(b"\n") + 1)
                handle.seek(0, os.SEEK_END)
            fileops.write(handle, line)
            fileops.fsync(handle)

    def history(self, campaign_id: str) -> list[dict]:
        """The verified meta-record *prefix*: reading stops at the first
        invalid line, so a record is never merged across a corrupt gap."""
        path = self.meta_path(campaign_id)
        if not path.exists():
            return []
        records: list[dict] = []
        with path.open("r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                record = parse_record(line)
                if record is None:
                    break  # consistent prefix only; check() classifies this
                records.append(record)
        return records

    # -- lifecycle -----------------------------------------------------------

    def submit(self, manifest: CampaignManifest) -> None:
        """Create the campaign directory and durably record the submission
        (spec, seeds, budgets) plus the initial ``QUEUED`` state.

        If any of the durable writes fails (ENOSPC mid-submit), the
        freshly created directory is removed best-effort before the error
        propagates — a rejected-by-the-disk submission must not leave a
        half-born campaign for ``check_all`` to flag forever.
        """
        directory = self.campaign_dir(manifest.campaign_id)
        if self.exists(manifest.campaign_id):
            raise StoreError(
                f"campaign {manifest.campaign_id!r} already exists"
            )
        created = not directory.exists()
        directory.mkdir(parents=True, exist_ok=True)
        try:
            self._append_meta(
                manifest.campaign_id,
                {
                    "v": META_VERSION,
                    "type": "submit",
                    "campaign": manifest.campaign_id,
                    "tenant": manifest.tenant,
                    "seeds": list(manifest.seeds),
                    "reduce": manifest.reduce,
                    "reduce_passes": list(manifest.reduce_passes),
                    "max_seconds": manifest.max_seconds,
                    "max_probes": manifest.max_probes,
                    "spec": spec_to_json(manifest.spec),
                },
            )
            self._append_meta(
                manifest.campaign_id,
                {"v": META_VERSION, "type": "state", "state": st.QUEUED},
            )
            self._fsync_dir(directory)
            self._fsync_dir(self.campaigns_dir)
        except OSError:
            if created:
                shutil.rmtree(directory, ignore_errors=True)
            raise

    def manifest(self, campaign_id: str) -> CampaignManifest:
        for record in self.history(campaign_id):
            if record.get("type") == "submit":
                return CampaignManifest(
                    campaign_id=campaign_id,
                    spec=spec_from_json(record["spec"]),
                    seeds=tuple(record["seeds"]),
                    tenant=record.get("tenant", "default"),
                    reduce=record.get("reduce", 0),
                    reduce_passes=tuple(record.get("reduce_passes") or ()),
                    max_seconds=record.get("max_seconds"),
                    max_probes=record.get("max_probes"),
                )
        raise StoreError(f"campaign {campaign_id!r} has no submit record")

    def state(self, campaign_id: str) -> str | None:
        """Current state folded from the meta history (``None`` before the
        first state record — only possible mid-submit crash)."""
        current = None
        for record in self.history(campaign_id):
            if record.get("type") == "state":
                current = record.get("state")
        return current

    def transition(self, campaign_id: str, new_state: str, **fields) -> None:
        """Durably record ``current -> new_state``; illegal edges raise.

        Extra *fields* (e.g. a structured ``reason`` for FAILED) ride along
        in the state record.  The record hits disk (fsync) before this
        returns, so the service never acts on an unrecorded transition.
        """
        current = self.state(campaign_id)
        if current is None:
            raise StoreError(f"campaign {campaign_id!r} has no state yet")
        if current == new_state:
            return  # idempotent re-entry (recovery replays finalization)
        if not st.can_transition(current, new_state):
            raise StoreError(
                f"illegal transition {current} -> {new_state} "
                f"for campaign {campaign_id!r}"
            )
        self._append_meta(
            campaign_id,
            {
                "v": META_VERSION,
                "type": "state",
                "state": new_state,
                **fields,
            },
        )
        if (
            self.compact_meta_bytes is not None
            and self.meta_path(campaign_id).stat().st_size
            > self.compact_meta_bytes
        ):
            self.compact_meta(campaign_id)

    # -- meta compaction -----------------------------------------------------

    def compact_meta(self, campaign_id: str) -> bool:
        """Fold the meta history into a two-record snapshot, crash-safely.

        The snapshot keeps the submit record verbatim plus one state record
        whose ``chain`` attests the whole folded state sequence (and whose
        other fields — e.g. a FAILED ``reason`` — come from the last live
        transition record).  Written tmp + fsync + atomic rename + dir
        fsync: a crash at any byte leaves either the old history or the new
        snapshot, never a mix, and a torn tmp is invisible to every reader.
        Returns ``True`` if a snapshot was written.
        """
        records = self.history(campaign_id)
        if not records or records[0].get("type") != "submit":
            return False  # nothing trustworthy to fold; leave for check()
        state_records = [r for r in records[1:] if r.get("type") == "state"]
        if len(state_records) <= 1:
            # Fresh (one bare record) or an untouched snapshot: folding
            # would only churn bytes, so compaction is idempotent.
            return False
        chain: list = []
        for record in state_records:
            chain.extend(_state_chain(record))
        last = dict(state_records[-1])
        last.pop("chain", None)
        snapshot_state = {
            **last,
            "compacted": len(records) - 1,
            "chain": chain,
        }
        directory = self.campaign_dir(campaign_id)
        tmp = directory / "meta.jsonl.tmp"
        fileops = self.fileops
        with fileops.open(tmp, "wb") as handle:
            fileops.write(handle, seal_record(records[0]))
            fileops.write(handle, seal_record(snapshot_state))
            fileops.fsync(handle)
        fileops.replace(tmp, self.meta_path(campaign_id))
        self._fsync_dir(directory)
        return True

    # -- result --------------------------------------------------------------

    def write_result(self, campaign_id: str, payload: dict) -> None:
        """Atomically (re)write ``result.json``: tmp + fsync + replace +
        directory fsync.  Readers see either the old bytes or the new bytes,
        never a torn file; rewriting the same payload is a no-op byte-wise.
        The file is one sealed record — canonical sorted-keys compact JSON
        plus a CRC-32 — so bytes stay deterministic, the encoder stays on
        the fast C path, and bit rot that still parses is detected."""
        directory = self.campaign_dir(campaign_id)
        target = self.result_path(campaign_id)
        tmp = directory / "result.json.tmp"
        fileops = self.fileops
        with fileops.open(tmp, "wb") as handle:
            fileops.write(handle, seal_record(payload))
            fileops.fsync(handle)
        fileops.replace(tmp, target)
        self._fsync_dir(directory)

    def read_result(self, campaign_id: str) -> dict | None:
        """The verified result payload; ``None`` if absent, ``StoreError``
        if present but unparseable or failing its checksum."""
        path = self.result_path(campaign_id)
        if not path.exists():
            return None
        record = parse_record(path.read_text(encoding="utf-8", errors="replace"))
        if record is None:
            raise StoreError(
                f"campaign {campaign_id!r}: result.json is corrupt "
                "(torn write or failed checksum)"
            )
        return record

    # -- invariants ----------------------------------------------------------

    def check(self, campaign_id: str) -> list[str]:
        """Invariant violations for one campaign (empty list = healthy).

        Checks: the meta prefix parses and is not interrupted by interior
        corruption; the first record is a submit; the state sequence —
        compacted ``chain`` records expanded in place — starts at QUEUED
        and follows only legal edges; a DONE/QUARANTINED campaign has a
        checksum-valid ``result.json``.  (FAILED and DEGRADED campaigns
        need no result; leftover ``*.tmp`` files from an interrupted atomic
        write are expected debris, not corruption.)
        """
        violations: list[str] = []
        path = self.meta_path(campaign_id)
        if not path.exists():
            return [f"{campaign_id}: no meta.jsonl"]
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        parsed = [parse_record(line) for line in lines]
        bad = [index for index, record in enumerate(parsed) if record is None]
        if bad and bad != [len(lines) - 1]:
            violations.append(
                f"{campaign_id}: interior meta corruption at line(s) "
                f"{[i + 1 for i in bad]}"
            )
        records = self.history(campaign_id)
        if not records or records[0].get("type") != "submit":
            violations.append(f"{campaign_id}: meta does not start with submit")
            return violations
        current = None
        for record in records[1:]:
            if record.get("type") != "state":
                continue
            chain = record.get("chain")
            if chain and chain[-1] != record.get("state"):
                violations.append(
                    f"{campaign_id}: compacted state {record.get('state')!r} "
                    f"does not match its chain tail {chain[-1]!r}"
                )
            for new in _state_chain(record):
                if current is None:
                    if new != st.QUEUED:
                        violations.append(
                            f"{campaign_id}: initial state {new!r} != QUEUED"
                        )
                elif not st.can_transition(current, new):
                    violations.append(
                        f"{campaign_id}: illegal edge {current} -> {new}"
                    )
                current = new
        if current in (st.DONE, st.QUARANTINED):
            try:
                result = self.read_result(campaign_id)
            except StoreError:
                result = None
            if result is None:
                violations.append(
                    f"{campaign_id}: state {current} but no valid result.json"
                )
        return violations

    def check_all(self) -> list[str]:
        violations: list[str] = []
        for campaign_id in self.campaign_ids():
            violations.extend(self.check(campaign_id))
        return violations

    def _fsync_dir(self, path: Path) -> None:
        """Directory fsync through the seam.  Unsupported-here errnos are
        ignored inside :meth:`FileOps.fsync_dir`; real I/O errors (EIO,
        ENOSPC) propagate — durability claims stay honest."""
        self.fileops.fsync_dir(path)
