"""The campaign service engine: one loop multiplexing many campaigns over
a shared worker fleet, safe against ``SIGKILL`` at any instant.

Control flow per :meth:`CampaignService.step`:

1. **poll** the fleet (no lock held — the HTTP API stays responsive);
2. **apply events** under the lock: journal each streamed seed record
   (fsync before anything else reacts to it), heartbeat its lease, account
   re-executions; a ``done`` releases the lease; a dead worker or reported
   error fails its batch over to the expiry path;
3. **expire leases**: kill the stalled worker, re-queue the batch's
   unjournaled seeds exactly once, charge the campaign's fault budget;
   a batch that fails twice is poisoned and its campaign FAILED;
4. **restart** missing workers, paced by decorrelated-jitter backoff;
5. **grant** batches to idle workers under the scheduler's fair-share
   rotation (skipping seeds the journal already holds);
6. **finalize** campaigns whose every seed is journaled: REDUCING →
   journaled resume-safe reductions → atomic ``result.json`` → DONE (or
   QUARANTINED when the post-hoc fault budget trips);
7. **enforce budgets** (wall clock, probes) with structured FAILED reasons.

Durability argument: every externally visible step is recorded (fsync)
*before* the service acts on it — seed records before they count toward
completion, state transitions before the phase they announce.  Because
each seed record is a pure function of ``(spec, seed)`` (fleet workers
build fresh harnesses and never quarantine locally) and the journal
dedups by seed, any interleaving of crashes, restarts, and re-granted
leases converges to the same journal contents — and ``result.json``
excludes timestamps and execution statistics, so its bytes are identical
across every schedule.  ``SIGTERM`` drains (leased work finishes, fsync,
exit 0); ``SIGKILL`` is just a crash the next start recovers from.

Disk-fault posture: every durable write can fail (ENOSPC, a failed
``fsync``), and the blast radius is always *one campaign*.  A journal,
meta, or result write that raises ``OSError`` moves only the affected
campaign to ``DEGRADED`` (best-effort recorded; remembered in memory when
even that write fails) while every other tenant keeps running — the chaos
matrix in ``tests/service/test_chaos_io.py`` injects a fault at every
individual I/O call and asserts exactly that.  Admission control sheds
new submissions (HTTP 503 + ``Retry-After``) while the store's disk is
below a free-space threshold, and per-tenant circuit breakers stop
serial campaign failures from monopolising the fleet (cooldowns on a
seeded decorrelated-jitter schedule; one HALF_OPEN trial re-closes them).
Workers that ship structurally garbage seed records are killed before the
record can poison the journal.
"""

from __future__ import annotations

import signal
import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.core.dedup import ReducedTest
from repro.core.dedup_scale import (
    DedupJournal,
    StreamingDedup,
    reduced_tests_from_record,
)
from repro.observability import as_tracer
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.journal import record_to_run
from repro.service import state as st
from repro.service.fleet import WorkerFleet, _sanitize_spec
from repro.service.leases import LeaseTable, Watchdog
from repro.service.scheduler import (
    Batch,
    FairScheduler,
    Rejection,
    plan_batches,
)
from repro.service.store import CampaignManifest, CampaignStore


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one service instance."""

    workers: int = 2
    batch_size: int = 2
    lease_ttl: float = 30.0
    max_queued: int = 32
    #: Worker deaths / lease expiries a campaign may absorb before FAILED.
    fault_budget: int = 5
    restart_backoff: float = 0.05
    restart_cap: float = 2.0
    jitter_seed: int = 0
    poll_interval: float = 0.05
    #: Shed new submissions (503) while the store's filesystem has less
    #: than this many free bytes; 0 disables shedding.  Running campaigns
    #: continue — admission control protects them from new disk pressure.
    min_disk_free_bytes: int = 0
    #: ``Retry-After`` hint attached to shed rejections.
    shed_retry_after: float = 5.0
    #: Consecutive campaign failures (FAILED/DEGRADED) that open a tenant's
    #: circuit breaker; 0 disables breakers entirely.
    breaker_failures: int = 0
    breaker_base: float = 0.5
    breaker_cap: float = 30.0


@dataclass
class _Active:
    """In-memory bookkeeping for one non-terminal campaign."""

    manifest: CampaignManifest
    journaled: set = field(default_factory=set)
    #: The journaled record dicts, keyed by seed.  Kept in step with
    #: ``journaled`` so finalization never re-reads (and re-checksums) the
    #: journal it just wrote; recovery seeds this cache from disk, so both
    #: paths finalize from equal dicts and write identical result bytes.
    records: dict = field(default_factory=dict)
    started: float | None = None  # monotonic time of the first grant
    probes: int = 0
    requeues: int = 0
    reexecuted_seeds: int = 0
    #: Live streaming dedup over the journal's (unreduced) finding type
    #: sets, fed as seed records land — in-memory only (the journal is
    #: its durable source of truth; recovery re-feeds it in journal
    #: order), so the seed hot path gains no durable writes.  The final
    #: pick set is arrival-order independent, which is what lets the
    #: result payload stay byte-identical across schedules.
    dedup: StreamingDedup = field(default_factory=StreamingDedup)


def _valid_seed_record(record: object, seed: int) -> bool:
    """Is a worker-shipped seed record shaped like something the journal
    (and finalization) can trust?  Structural checks only — semantic truth
    is the deterministic re-execution property's job — but enough that a
    corrupted worker cannot journal a record finalization later chokes on
    or silently misattributes to another seed."""
    if not isinstance(record, dict) or record.get("seed") != seed:
        return False
    if not isinstance(record.get("program"), str):
        return False
    findings = record.get("findings")
    if not isinstance(findings, list):
        return False
    for entry in findings:
        if not isinstance(entry, dict):
            return False
        if "signature" not in entry or "transformations" not in entry:
            return False
    faults = record.get("faults", [])
    if not isinstance(faults, list) or any(
        not isinstance(fault, (list, tuple)) or len(fault) != 2
        for fault in faults
    ):
        return False
    return True


def _finding_to_json(record_entry: dict, *, seed: int, program: str) -> dict:
    """One result/findings entry: the journal's finding shape plus its
    provenance (seed, program) — deterministic, timestamp-free."""
    return {"seed": seed, "program": program, **record_entry}


def _dedup_payload(engine: StreamingDedup) -> dict:
    """A dedup engine's *order-independent* summary for ``result.json``.

    Only multiset-determined fields belong here (the pick set, candidate
    counts) — order-dependent live counters like evictions stay in the
    status API and trace, keeping result bytes identical across every
    schedule of the same campaign."""
    result = engine.result()
    stats = engine.stats
    return {
        "candidates": stats.candidates,
        "skipped_empty": stats.skipped_empty,
        "reports": result.report_count,
        "suppressed": (
            stats.candidates - stats.skipped_empty - result.report_count
        ),
        "picks": [
            {
                "test": test.test_id,
                "types": sorted(test.types),
                "nondeterministic": test.nondeterministic,
            }
            for test in result.to_investigate
        ],
    }


class CampaignService:
    """See module docstring.  Thread-safe: the HTTP layer calls the public
    query/submit methods from handler threads; the engine loop owns the
    fleet."""

    def __init__(
        self,
        store: CampaignStore,
        config: ServiceConfig | None = None,
        *,
        tracer: object | None = None,
    ) -> None:
        self.store = store
        self.config = config or ServiceConfig()
        self.tracer = as_tracer(tracer)
        self._lock = threading.RLock()
        self.scheduler = FairScheduler(max_queued=self.config.max_queued)
        self.leases = LeaseTable(ttl=self.config.lease_ttl)
        self.watchdog = Watchdog(
            restart_backoff=self.config.restart_backoff,
            restart_cap=self.config.restart_cap,
            jitter_seed=self.config.jitter_seed,
            fault_budget=self.config.fault_budget,
        )
        self.fleet = WorkerFleet(self.config.workers)
        self._active: dict[str, _Active] = {}
        self._draining = False
        self._recovered: list[str] = []
        self._broken: dict[str, list[str]] = {}
        #: Per-tenant circuit breakers (lazily created; empty when disabled).
        self._breakers: dict[str, CircuitBreaker] = {}

    def _breaker(self, tenant: str) -> CircuitBreaker | None:
        """The tenant's breaker (created on first use), or ``None`` when
        breakers are disabled.  Seeded per tenant so cooldown sequences are
        reproducible yet not in lockstep across tenants."""
        if self.config.breaker_failures <= 0:
            return None
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.config.breaker_failures,
                base_delay=self.config.breaker_base,
                cap=self.config.breaker_cap,
                seed=self.config.jitter_seed
                ^ zlib.crc32(tenant.encode("utf-8")),
            )
            self._breakers[tenant] = breaker
        return breaker

    def _note_campaign_outcome(self, tenant: str, *, failed: bool) -> None:
        breaker = self._breaker(tenant)
        if breaker is None:
            return
        before = breaker.state
        if failed:
            breaker.record_failure(time.monotonic())
        else:
            breaker.record_success()
        if breaker.state != before:
            self.tracer.emit(
                "service.breaker",
                tenant=tenant,
                state=breaker.state,
                consecutive_failures=breaker.consecutive_failures,
            )

    # -- submission ----------------------------------------------------------

    def submit(self, manifest: CampaignManifest) -> Rejection | None:
        """Admit a campaign; ``None`` on success, a :class:`Rejection`
        (never persisted — rejected work owns no disk) otherwise."""
        with self._lock:
            if self._draining:
                rejection = Rejection(manifest.campaign_id, "draining")
            elif self.store.exists(manifest.campaign_id):
                rejection = Rejection(
                    manifest.campaign_id, "duplicate-campaign-id"
                )
            elif self.scheduler.queued_campaigns() >= self.config.max_queued:
                rejection = Rejection(manifest.campaign_id, "queue-full")
            else:
                rejection = self._admission_check(manifest)
            if rejection is not None:
                self.tracer.emit(
                    "service.reject",
                    campaign=rejection.campaign_id,
                    reason=rejection.reason,
                )
                return rejection
            try:
                self.store.submit(manifest)
            except OSError as exc:
                # The disk refused the submission; the store already removed
                # the half-born directory, so nothing durable leaks.
                self.tracer.emit(
                    "service.reject",
                    campaign=manifest.campaign_id,
                    reason="store-write-failed",
                    error=str(exc),
                )
                return Rejection(
                    manifest.campaign_id,
                    "store-write-failed",
                    retry_after=self.config.shed_retry_after,
                )
            batches = plan_batches(
                manifest.campaign_id, manifest.seeds, self.config.batch_size
            )
            assert (
                self.scheduler.admit(
                    manifest.campaign_id, manifest.tenant, batches
                )
                is None
            )
            self._active[manifest.campaign_id] = _Active(
                manifest=manifest,
                dedup=StreamingDedup(tracer=self.tracer),
            )
            self.tracer.emit(
                "service.submit",
                campaign=manifest.campaign_id,
                tenant=manifest.tenant,
                seeds=len(manifest.seeds),
                batches=len(batches),
            )
            return None

    def _admission_check(self, manifest: CampaignManifest) -> Rejection | None:
        """Load shedding and circuit breaking, after every cheaper check.

        Order matters: the breaker's ``allow`` *consumes* the HALF_OPEN
        trial slot, so it must be the very last gate — a submission turned
        away for a full disk must not burn the tenant's one trial.
        """
        if self.config.min_disk_free_bytes > 0:
            free = self.store.disk_free()
            if free < self.config.min_disk_free_bytes:
                self.tracer.emit(
                    "service.shed",
                    campaign=manifest.campaign_id,
                    free_bytes=free,
                    min_free_bytes=self.config.min_disk_free_bytes,
                )
                return Rejection(
                    manifest.campaign_id,
                    "disk-low",
                    retry_after=self.config.shed_retry_after,
                )
        breaker = self._breaker(manifest.tenant)
        if breaker is not None:
            now = time.monotonic()
            if not breaker.allow(now):
                return Rejection(
                    manifest.campaign_id,
                    "circuit-open",
                    retry_after=breaker.retry_after(now),
                )
        return None

    # -- recovery ------------------------------------------------------------

    def recover(self) -> list[str]:
        """Reload every non-terminal campaign from the store (crash
        recovery).  Corrupt campaigns are reported and left untouched —
        loudly broken beats silently merged."""
        with self._lock:
            recovered = []
            for campaign_id in self.store.campaign_ids():
                violations = self.store.check(campaign_id)
                if violations:
                    self._broken[campaign_id] = violations
                    self.tracer.emit(
                        "service.corrupt",
                        campaign=campaign_id,
                        violations=violations,
                    )
                    continue
                current = self.store.state(campaign_id)
                if current is None or st.is_terminal(current):
                    continue
                manifest = self.store.manifest(campaign_id)
                records = self.store.journal(campaign_id).load_records()
                journaled = set(records)
                active = _Active(
                    manifest=manifest,
                    journaled=journaled,
                    records=records,
                    dedup=StreamingDedup(tracer=self.tracer),
                )
                # Re-feed the live picker from the journal in file order —
                # the same arrival order the pre-crash service saw, so the
                # decision stream (not just the order-free pick set) is
                # identical to an uninterrupted run's.
                for record in records.values():
                    active.dedup.ingest_many(
                        reduced_tests_from_record(record)
                    )
                self._active[campaign_id] = active
                remaining = [
                    batch
                    for batch in plan_batches(
                        campaign_id, manifest.seeds, self.config.batch_size
                    )
                    if any(seed not in journaled for seed in batch.seeds)
                ]
                self.scheduler.admit(
                    campaign_id, manifest.tenant, remaining, force=True
                )
                recovered.append(campaign_id)
                self.tracer.emit(
                    "service.recover",
                    campaign=campaign_id,
                    state=current,
                    journaled=len(journaled),
                    remaining_batches=len(remaining),
                )
            self._recovered = recovered
            return recovered

    # -- the scheduling round ------------------------------------------------

    def step(self, *, poll: float | None = None) -> None:
        events = self.fleet.poll(
            self.config.poll_interval if poll is None else poll
        )
        now = time.monotonic()
        with self._lock:
            for event in events:
                self._apply_event(event, now)
            self._expire_leases(now)
            self._restart_workers(now)
            if not self._draining:
                self._grant(now)
            self._enforce_budgets(now)
            if not self._draining:
                self._finalize_ready()

    # -- event handling ------------------------------------------------------

    def _apply_event(self, event: tuple, now: float) -> None:
        kind = event[0]
        if kind == "dead":
            _, worker_id, exitcode = event
            self.tracer.emit(
                "service.worker_dead", worker=worker_id, exitcode=exitcode
            )
            self.watchdog.note_worker_death(now)
            lease = self.leases.release(worker_id)
            if lease is not None:
                self._fail_batch(lease.batch, now, cause="worker-death")
            return
        _, worker_id, payload = event
        tag = payload[0]
        if tag == "seed":
            _, campaign_id, batch_index, seed, record = payload
            active = self._active.get(campaign_id)
            if active is None:
                return  # campaign already failed/finalized; drop the record
            if not _valid_seed_record(record, seed):
                # A worker shipped a garbage verdict (bad pickle survivor,
                # memory corruption, a buggy worker build).  Journaling it
                # would poison every later resume, so: kill the worker,
                # charge the batch, never write the record.
                self.tracer.emit(
                    "service.garbage_record",
                    campaign=campaign_id,
                    batch=batch_index,
                    seed=seed,
                    worker=worker_id,
                )
                lease = self.leases.release(worker_id)
                self.fleet.kill(worker_id)
                self.watchdog.note_worker_death(now)
                if lease is not None:
                    self._fail_batch(lease.batch, now, cause="garbage-record")
                return
            try:
                self.store.journal(campaign_id).append_record(record)
            except OSError as exc:
                self._degrade_campaign(
                    campaign_id,
                    reason="journal-write-failed",
                    detail={"seed": seed, "error": str(exc)},
                )
                return
            if seed in active.journaled:
                # A re-granted lease re-ran this seed: the journal keeps the
                # later (identical) record; only the accounting changes —
                # the live dedup stream saw this seed's findings already.
                active.reexecuted_seeds += 1
            else:
                active.dedup.ingest_many(reduced_tests_from_record(record))
            active.journaled.add(seed)
            active.records[seed] = record
            self.leases.heartbeat(worker_id, now)
            lease = self.leases.lease_for(worker_id)
            if lease is not None:
                lease.completed.add(seed)
        elif tag == "done":
            _, campaign_id, batch_index, probes = payload
            self.leases.release(worker_id)
            self.fleet.mark_idle(worker_id)
            self.watchdog.note_worker_healthy()
            active = self._active.get(campaign_id)
            if active is not None:
                active.probes += int(probes)
        elif tag == "error":
            _, campaign_id, batch_index, message = payload
            self.tracer.emit(
                "service.batch_error",
                campaign=campaign_id,
                batch=batch_index,
                error=message,
            )
            lease = self.leases.release(worker_id)
            self.fleet.mark_idle(worker_id)
            if lease is not None:
                self._fail_batch(lease.batch, now, cause=message)

    def _fail_batch(self, batch: Batch, now: float, *, cause: str) -> None:
        campaign_id = batch.campaign_id
        active = self._active.get(campaign_id)
        if active is None:
            return
        faults = self.watchdog.charge(campaign_id)
        if self.watchdog.exhausted(campaign_id):
            self._fail_campaign(
                campaign_id,
                reason="fault-budget-exhausted",
                detail={"faults": faults, "budget": self.watchdog.fault_budget},
            )
            return
        if self.leases.attempts(batch) >= 2:
            self._fail_campaign(
                campaign_id,
                reason="poisoned-batch",
                detail={"batch": batch.index, "cause": cause},
            )
            return
        remaining = tuple(
            seed for seed in batch.seeds if seed not in active.journaled
        )
        requeued = Batch(campaign_id, batch.index, remaining or batch.seeds)
        self.scheduler.requeue(requeued)
        active.requeues += 1
        self.tracer.emit(
            "service.requeue",
            campaign=campaign_id,
            batch=batch.index,
            seeds=len(requeued.seeds),
            cause=cause,
        )

    def _expire_leases(self, now: float) -> None:
        for lease in self.leases.expired(now):
            self.tracer.emit(
                "service.lease_expired",
                campaign=lease.batch.campaign_id,
                batch=lease.batch.index,
                worker=lease.worker_id,
                attempt=lease.attempt,
            )
            self.fleet.kill(lease.worker_id)
            self.leases.release(lease.worker_id)
            self.watchdog.note_worker_death(now)
            self._fail_batch(lease.batch, now, cause="lease-expired")

    def _restart_workers(self, now: float) -> None:
        need_workers = self.scheduler.has_pending() or bool(
            self.leases.active()
        )
        while (
            need_workers
            and not self._draining
            and self.fleet.alive_count() < self.config.workers
            and self.watchdog.may_restart(now)
        ):
            worker_id = self.fleet.spawn()
            self.tracer.emit("service.worker_restart", worker=worker_id)

    def _grant(self, now: float) -> None:
        for worker_id in self.fleet.idle_workers():
            granted = False
            while not granted:
                batch = self.scheduler.next_batch()
                if batch is None:
                    return
                active = self._active.get(batch.campaign_id)
                if active is None:
                    continue  # campaign failed while the batch was queued
                remaining = tuple(
                    seed
                    for seed in batch.seeds
                    if seed not in active.journaled
                )
                if not remaining:
                    continue  # fully journaled by an earlier lease
                try:
                    if self.store.state(batch.campaign_id) == st.QUEUED:
                        self.store.transition(batch.campaign_id, st.RUNNING)
                except OSError as exc:
                    # Can't durably record RUNNING — granting anyway would
                    # act on an unrecorded transition.  Degrade this
                    # campaign; the worker stays idle for the next batch.
                    self._degrade_campaign(
                        batch.campaign_id,
                        reason="meta-write-failed",
                        detail={"error": str(exc)},
                    )
                    continue
                if active.started is None:
                    active.started = now
                grant = Batch(batch.campaign_id, batch.index, remaining)
                lease = self.leases.grant(grant, worker_id, now)
                if not self.fleet.send_batch(
                    worker_id,
                    grant.campaign_id,
                    grant.index,
                    active.manifest.spec,
                    grant.seeds,
                ):
                    self.leases.release(worker_id)
                    self._fail_batch(grant, now, cause="send-failed")
                    return
                granted = True
                self.tracer.emit(
                    "service.grant",
                    campaign=grant.campaign_id,
                    batch=grant.index,
                    worker=worker_id,
                    seeds=len(grant.seeds),
                    attempt=lease.attempt,
                )

    # -- budgets -------------------------------------------------------------

    def _enforce_budgets(self, now: float) -> None:
        for campaign_id, active in list(self._active.items()):
            manifest = active.manifest
            if (
                manifest.max_seconds is not None
                and active.started is not None
                and now - active.started > manifest.max_seconds
            ):
                self._fail_campaign(
                    campaign_id,
                    reason="time-budget-exhausted",
                    detail={"max_seconds": manifest.max_seconds},
                )
            elif (
                manifest.max_probes is not None
                and active.probes > manifest.max_probes
            ):
                self._fail_campaign(
                    campaign_id,
                    reason="probe-budget-exhausted",
                    detail={
                        "max_probes": manifest.max_probes,
                        "probes": active.probes,
                    },
                )

    def _fail_campaign(
        self, campaign_id: str, *, reason: str, detail: dict | None = None
    ) -> None:
        tenant = self._detach_campaign(campaign_id)
        self._record_terminal(
            campaign_id, st.FAILED, reason=reason, detail=detail
        )
        if tenant is not None:
            self._note_campaign_outcome(tenant, failed=True)
        self.tracer.emit(
            "service.campaign_failed", campaign=campaign_id, reason=reason
        )

    def _degrade_campaign(
        self, campaign_id: str, *, reason: str, detail: dict | None = None
    ) -> None:
        """The *store* failed this campaign (ENOSPC, failed fsync): stop its
        work, record DEGRADED best-effort, leave every other tenant alone."""
        tenant = self._detach_campaign(campaign_id)
        self._record_terminal(
            campaign_id, st.DEGRADED, reason=reason, detail=detail
        )
        if tenant is not None:
            self._note_campaign_outcome(tenant, failed=True)
        self.tracer.emit(
            "service.degraded", campaign=campaign_id, reason=reason
        )

    def _detach_campaign(self, campaign_id: str) -> str | None:
        """Kill the campaign's leased workers and drop every in-memory
        reference; returns its tenant (for breaker accounting) if known."""
        for lease in self.leases.active_for(campaign_id):
            self.fleet.kill(lease.worker_id)
            self.leases.release(lease.worker_id)
        self.scheduler.discard(campaign_id)
        self.leases.forget_campaign(campaign_id)
        self.watchdog.forget_campaign(campaign_id)
        active = self._active.pop(campaign_id, None)
        return active.manifest.tenant if active is not None else None

    def _record_terminal(
        self,
        campaign_id: str,
        terminal: str,
        *,
        reason: str,
        detail: dict | None,
    ) -> None:
        """Durably record a terminal transition, best-effort: when the disk
        is the thing that is broken, the record itself may fail — remember
        the campaign as broken in memory (surfaced via the status API) and
        keep serving other tenants rather than crashing the loop.

        One subtlety the fault matrix found: a failed ``fsync`` can surface
        *after* its record landed in the file, so the on-disk history may
        already hold a terminal state — possibly a different one than we
        are about to record (``DONE`` landed, then the degrade path asks
        for ``DEGRADED``).  The on-disk record is the truth the next boot
        will read; accept it rather than writing an illegal edge."""
        try:
            current = self.store.state(campaign_id)
        except OSError:
            current = None
        if current is not None and st.is_terminal(current):
            if current != terminal:
                self.tracer.emit(
                    "service.terminal_preempted",
                    campaign=campaign_id,
                    recorded=current,
                    intended=terminal,
                    reason=reason,
                )
            return
        try:
            self.store.transition(
                campaign_id, terminal, reason=reason, **(detail or {})
            )
        except OSError as exc:
            self._broken.setdefault(campaign_id, []).append(
                f"{campaign_id}: {terminal} ({reason}) could not be "
                f"recorded: {exc}"
            )
            self.tracer.emit(
                "service.terminal_unrecorded",
                campaign=campaign_id,
                state=terminal,
                error=str(exc),
            )

    # -- finalization --------------------------------------------------------

    def _finalize_ready(self) -> None:
        for campaign_id, active in list(self._active.items()):
            if not set(active.manifest.seeds) <= active.journaled:
                continue
            if self.scheduler.pending_batches(campaign_id):
                continue
            if self.leases.active_for(campaign_id):
                continue
            try:
                self._finalize(campaign_id, active)
            except OSError as exc:
                # The store (journal/meta/result write) failed finalization,
                # not the campaign: DEGRADED, and only for this campaign.
                self._degrade_campaign(
                    campaign_id,
                    reason="finalize-io-error",
                    detail={"error": f"{type(exc).__name__}: {exc}"},
                )
            except Exception as exc:  # noqa: BLE001 - fail loudly, not fatally
                self._fail_campaign(
                    campaign_id,
                    reason="finalize-error",
                    detail={"error": f"{type(exc).__name__}: {exc}"},
                )

    def _finalize(self, campaign_id: str, active: _Active) -> None:
        """REDUCING phase + atomic result write (idempotent: recovery can
        re-enter at any point and rewrite the same bytes)."""
        from repro.robustness import QuarantineTracker

        manifest = active.manifest
        self.store.transition(campaign_id, st.REDUCING)
        records = active.records
        # Findings and faults come straight from the journaled record dicts
        # (cached as they were appended; recovery pre-loads them from disk);
        # the harness (and Finding objects via record_to_run) are only
        # rebuilt when the campaign asked for reduction.
        findings_json: list[dict] = []
        for seed in manifest.seeds:
            record = records[seed]
            for entry in record["findings"]:
                findings_json.append(
                    _finding_to_json(
                        entry, seed=seed, program=record["program"]
                    )
                )
        # Post-hoc quarantine: same budget, same reasons as the live
        # tracker would produce, but computed from the journal so the
        # records themselves never depended on it.
        robustness = getattr(manifest.spec, "robustness", None)
        budget = (
            robustness.quarantine_after if robustness is not None else None
        )
        tracker = QuarantineTracker(budget)
        for seed in manifest.seeds:
            for target_name, kind in records[seed].get("faults", ()):
                tracker.record_fault_kind(target_name, kind)
        quarantined = tracker.report()
        reductions = []
        reduced_dedup: StreamingDedup | None = None
        if manifest.reduce > 0:
            # Post-reduction dedup runs incrementally as each reduction
            # completes, with an fsync-per-decision journal: a SIGKILL
            # anywhere in this phase resumes (reductions *and* dedup
            # decisions replay from their journals) into byte-identical
            # journals and an identical pick set.  Journal I/O failures
            # propagate as OSError into the finalize-io-error degrade.
            reduced_dedup = StreamingDedup(
                tracer=self.tracer,
                journal=DedupJournal(
                    self.store.dedup_journal_path(campaign_id),
                    fileops=self.store.fileops,
                ),
                resume=True,
                stream_key=campaign_id,
            )
            harness = _sanitize_spec(manifest.spec).build()
            try:
                references = {p.name: p for p in harness.references}
                findings = []
                for seed in manifest.seeds:
                    if len(findings) >= manifest.reduce:
                        break
                    findings.extend(
                        record_to_run(records[seed], references).findings
                    )
                for index, finding in enumerate(findings[: manifest.reduce]):
                    result = harness.reduce_finding(
                        finding,
                        journal=self.store.reduce_journal_path(
                            campaign_id, index
                        ),
                        resume=True,
                        passes=list(manifest.reduce_passes) or None,
                    )
                    reductions.append(
                        {
                            "target": finding.target_name,
                            "signature": finding.signature,
                            "seed": finding.seed,
                            "initial_length": result.initial_length,
                            "reduced_length": len(result.transformations),
                            "degraded": result.degraded,
                        }
                    )
                    reduced_dedup.ingest(
                        ReducedTest.from_reduction(
                            f"reduce-{index}", finding, result
                        )
                    )
            finally:
                harness.close()
        payload = {
            "campaign": campaign_id,
            "seeds": list(manifest.seeds),
            "findings": findings_json,
            "quarantined": quarantined,
            "reductions": reductions,
            # Live triage picks over the journal's unreduced type sets...
            "dedup": _dedup_payload(active.dedup),
        }
        if reduced_dedup is not None:
            # ...and the paper's real Figure 6 picks, over post-reduction
            # type sets (§2.1: dedup is most precise after reduction).
            payload["dedup_reduced"] = _dedup_payload(reduced_dedup)
        self.store.write_result(campaign_id, payload)
        terminal = st.QUARANTINED if quarantined else st.DONE
        self.store.transition(campaign_id, terminal)
        self.tracer.emit(
            "service.finalized",
            campaign=campaign_id,
            state=terminal,
            findings=len(findings_json),
            reductions=len(reductions),
            requeues=active.requeues,
            reexecuted_seeds=active.reexecuted_seeds,
        )
        self.scheduler.discard(campaign_id)
        self.leases.forget_campaign(campaign_id)
        self.watchdog.forget_campaign(campaign_id)
        self._active.pop(campaign_id, None)
        self._note_campaign_outcome(manifest.tenant, failed=False)

    # -- queries (HTTP layer) ------------------------------------------------

    def list_campaigns(self) -> list[dict]:
        with self._lock:
            entries = []
            for campaign_id in self.store.campaign_ids():
                entry = {
                    "campaign": campaign_id,
                    "state": self.store.state(campaign_id),
                }
                if campaign_id in self._broken:
                    entry["violations"] = self._broken[campaign_id]
                entries.append(entry)
            return entries

    def status(self, campaign_id: str) -> dict | None:
        with self._lock:
            if not self.store.exists(campaign_id):
                return None
            current = self.store.state(campaign_id)
            entry: dict = {"campaign": campaign_id, "state": current}
            if campaign_id in self._broken:
                entry["violations"] = self._broken[campaign_id]
                return entry
            active = self._active.get(campaign_id)
            manifest = (
                active.manifest
                if active is not None
                else self.store.manifest(campaign_id)
            )
            records = self.store.journal(campaign_id).load_records()
            entry.update(
                tenant=manifest.tenant,
                seeds=len(manifest.seeds),
                journaled=len(records),
                findings=sum(
                    len(r.get("findings", ())) for r in records.values()
                ),
            )
            if active is not None:
                entry["stats"] = {
                    "probes": active.probes,
                    "requeues": active.requeues,
                    "reexecuted_seeds": active.reexecuted_seeds,
                    "faults": self.watchdog.faults(campaign_id),
                }
                entry["dedup"] = active.dedup.stats_json()
            return entry

    def findings(self, campaign_id: str) -> list[dict] | None:
        """Live findings straight from the journal (works mid-campaign)."""
        with self._lock:
            if not self.store.exists(campaign_id):
                return None
            records = self.store.journal(campaign_id).load_records()
            out: list[dict] = []
            for seed in sorted(records):
                record = records[seed]
                for entry in record.get("findings", ()):
                    out.append(
                        _finding_to_json(
                            entry, seed=seed, program=record.get("program")
                        )
                    )
            return out

    def dedup(self, campaign_id: str) -> dict | None:
        """The campaign's dedup picture: live streaming picks while it
        runs, the recorded ``result.json`` blocks once terminal."""
        with self._lock:
            if not self.store.exists(campaign_id):
                return None
            active = self._active.get(campaign_id)
            if active is not None:
                return {
                    "campaign": campaign_id,
                    "live": True,
                    "stats": active.dedup.stats_json(),
                    **_dedup_payload(active.dedup),
                }
            entry: dict = {"campaign": campaign_id, "live": False}
            try:
                result = self.store.read_result(campaign_id)
            except Exception:  # corrupt result: serve the bare entry
                result = None
            if result is not None:
                for key in ("dedup", "dedup_reduced"):
                    if key in result:
                        entry[key] = result[key]
            return entry

    def report(self, campaign_id: str) -> dict | None:
        """Live repro-report summary over the campaign's journal."""
        from repro.observability.report import (
            _iter_records,
            _jsonable,
            summarize,
        )

        with self._lock:
            if not self.store.exists(campaign_id):
                return None
            path = self.store.journal_path(campaign_id)
            records = _iter_records(path) if path.exists() else ()
            return _jsonable(summarize(records))

    def healthz(self) -> dict:
        with self._lock:
            payload = {
                "ok": True,
                "draining": self._draining,
                "workers_alive": self.fleet.alive_count(),
                "active_campaigns": len(self._active),
                "fleet_restarts": self.watchdog.restarts,
            }
            if self.config.min_disk_free_bytes > 0:
                free = self.store.disk_free()
                payload["disk_free_bytes"] = free
                payload["shedding"] = free < self.config.min_disk_free_bytes
            if self._breakers:
                payload["breakers"] = {
                    tenant: breaker.state
                    for tenant, breaker in sorted(self._breakers.items())
                }
            if self._broken:
                payload["broken_campaigns"] = sorted(self._broken)
            return payload

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self.recover()
        self.fleet.start()

    def idle(self) -> bool:
        with self._lock:
            return (
                not self.scheduler.has_pending()
                and not self.leases.active()
                and not self._active
            )

    def run_until_idle(self, *, max_seconds: float = 300.0) -> None:
        """Drive the loop until every submitted campaign is terminal (the
        in-process mode tests and the benchmark use)."""
        deadline = time.monotonic() + max_seconds
        while not self.idle():
            if time.monotonic() > deadline:
                raise TimeoutError("service did not go idle in time")
            self.step()

    def request_drain(self) -> None:
        with self._lock:
            if not self._draining:
                self._draining = True
                self.tracer.emit("service.drain_requested")

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def drain(self, *, max_seconds: float = 60.0) -> bool:
        """Finish leased work, stop the fleet cleanly, and return whether
        every worker exited 0.  New grants stop immediately; queued batches
        stay durable in the store for the next start."""
        self.request_drain()
        deadline = time.monotonic() + max_seconds
        while self.leases.active() and time.monotonic() < deadline:
            self.step()
        clean = not self.leases.active()
        self.fleet.stop(drain=True)
        self.tracer.emit("service.drained", clean=clean)
        return clean

    def shutdown(self) -> None:
        """Hard stop (tests): kill the fleet, keep the store as-is."""
        self.fleet.stop(drain=False)

    def run_forever(self, *, install_signals: bool = True) -> int:
        """The ``repro-serve`` main loop: step until a drain is requested
        (``SIGTERM`` or ``POST /drain``), then drain and exit 0."""
        if install_signals:
            signal.signal(signal.SIGTERM, lambda s, f: self.request_drain())
            signal.signal(signal.SIGINT, lambda s, f: self.request_drain())
        while not self.draining:
            self.step()
        return 0 if self.drain() else 1
