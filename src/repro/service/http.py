"""Stdlib JSON API for the campaign service (no third-party deps).

Endpoints::

    GET  /healthz                   liveness + drain state + fleet health
    GET  /campaigns                 all campaigns with their stored states
    POST /campaigns                 submit (202) or reject (429/503)
    GET  /campaigns/<id>            status: state, progress, stats
    GET  /campaigns/<id>/findings   live findings from the journal
    GET  /campaigns/<id>/report     live repro-report summary
    GET  /campaigns/<id>/dedup      streaming dedup picks (live or final)
    POST /drain                     request an orderly drain (SIGTERM twin)

The handler threads only call the engine's lock-guarded query/submit
methods — they never touch the fleet — so the API stays read-consistent
with whatever the last fsync'd store record says.  The bound address is
written to ``<store>/http.json`` so tests and the chaos harness can find
an ephemeral port after the fact.

Misbehaving clients are a fault model, not an edge case (the chaos layer
ships raw-socket versions of each): a truncated POST (``Content-Length``
larger than the wire delivers) gets 400, a slow-loris body gets 408 and
the connection closed, a body over :data:`MAX_BODY_BYTES` gets 413, and a
malformed ``Content-Length`` or non-JSON body gets a structured 400 — a
bad client can never hang a handler thread or surface as a 500.

Retryable rejections — load shedding on low disk, an open circuit
breaker, a store write refused by the disk — map to **503 + Retry-After**
(from the rejection's ``retry_after`` hint); plain scheduler rejections
(queue full, duplicate id, draining) stay 429.

Submission body (all fields but ``seeds``/``targets`` optional)::

    {"id": "c1", "tenant": "alice", "seeds": [0, 1, 2],
     "targets": ["SwiftShader", ...], "references": [...], "donors": [...],
     "options": {...FuzzerOptions fields...},
     "robustness": {...RobustnessConfig fields...},
     "optimized_flow": true, "reduce": 1,
     "max_seconds": 120.0, "max_probes": 100000}
"""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.robustness.retry import DecorrelatedJitter
from repro.service.engine import CampaignService
from repro.service.store import CampaignManifest, spec_from_json

#: Hard cap on POST bodies.  Far above any real submission (a campaign
#: manifest is a few KB) and far below anything that could pressure memory.
MAX_BODY_BYTES = 1 << 20

#: Socket timeout per handler connection: the longest a slow-loris client
#: can pin a handler thread before it gets a 408 and the connection drops.
HANDLER_TIMEOUT = 10.0


def manifest_from_submission(body: dict) -> CampaignManifest:
    """Build a :class:`CampaignManifest` from a POST /campaigns body."""
    if "seeds" not in body or "targets" not in body:
        raise ValueError("submission requires 'seeds' and 'targets'")
    campaign_id = str(body.get("id") or f"campaign-{abs(hash(tuple(body['seeds']))) % 10**8}")
    spec = spec_from_json(
        {
            "kind": body.get("kind", "core"),
            "target_names": list(body["targets"]),
            "reference_names": body.get("references"),
            "donor_names": body.get("donors"),
            "options": body.get("options"),
            "robustness": body.get("robustness"),
            "optimized_flow": body.get("optimized_flow", True),
        }
    )
    return CampaignManifest(
        campaign_id=campaign_id,
        spec=spec,
        seeds=tuple(int(seed) for seed in body["seeds"]),
        tenant=str(body.get("tenant", "default")),
        reduce=int(body.get("reduce", 0)),
        reduce_passes=tuple(
            str(name) for name in body.get("reduce_passes") or ()
        ),
        max_seconds=body.get("max_seconds"),
        max_probes=body.get("max_probes"),
    )


class _BadBody(Exception):
    """A request body we refuse to read: carries the status to answer."""

    def __init__(self, status: int, error: str) -> None:
        super().__init__(error)
        self.status = status
        self.error = error


class _Handler(BaseHTTPRequestHandler):
    service: CampaignService  # set by make_server

    #: Per-connection socket timeout (see :data:`HANDLER_TIMEOUT`).
    timeout = HANDLER_TIMEOUT

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet; the service tracer is the log

    def _json(
        self, status: int, payload, *, headers: dict | None = None
    ) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(data)
        except OSError:
            pass  # client already gone; nothing to tell it

    def _body(self) -> dict:
        """Read and parse the request body, defensively.

        Every way a client can lie is answered with a structured status
        instead of a hang or a 500: a malformed/negative ``Content-Length``
        is 400, a body over :data:`MAX_BODY_BYTES` is 413 (unread — we
        don't slurp what we already refused), a wire that delivers fewer
        bytes than declared is 400, a read that stalls past the socket
        timeout is 408, and bytes that aren't a JSON object are 400.
        """
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            raise _BadBody(400, f"bad-content-length: {raw_length!r}")
        if length < 0:
            raise _BadBody(400, f"bad-content-length: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            # Refuse before reading; close_connection (set by the caller's
            # error path) stops the client streaming the rest at us.
            raise _BadBody(413, f"body-too-large: {length} > {MAX_BODY_BYTES}")
        if length == 0:
            raw = b"{}"
        else:
            try:
                raw = self.rfile.read(length)
            except socket.timeout:
                raise _BadBody(408, "body-read-timeout")
            except OSError as exc:
                raise _BadBody(400, f"body-read-failed: {exc}")
            if len(raw) < length:
                # Content-Length promised more than the wire delivered.
                raise _BadBody(
                    400, f"truncated-body: got {len(raw)} of {length} bytes"
                )
        try:
            body = json.loads(raw.decode("utf-8", errors="replace"))
        except json.JSONDecodeError as exc:
            raise _BadBody(400, f"malformed-json: {exc}")
        if not isinstance(body, dict):
            raise _BadBody(400, "request body must be a JSON object")
        return body

    # (A slow-loris request *line/headers* — as opposed to body — is already
    # handled by the stdlib: handle_one_request catches the socket timeout
    # and drops the connection; there is no well-formed request to answer.)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["healthz"]:
            self._json(200, self.service.healthz())
            return
        if parts == ["campaigns"]:
            self._json(200, {"campaigns": self.service.list_campaigns()})
            return
        if len(parts) >= 2 and parts[0] == "campaigns":
            campaign_id = parts[1]
            if len(parts) == 2:
                payload = self.service.status(campaign_id)
            elif parts[2] == "findings":
                found = self.service.findings(campaign_id)
                payload = None if found is None else {"findings": found}
            elif parts[2] == "report":
                payload = self.service.report(campaign_id)
            elif parts[2] == "dedup":
                payload = self.service.dedup(campaign_id)
            else:
                payload = None
            if payload is None:
                self._json(404, {"error": "not-found"})
            else:
                self._json(200, payload)
            return
        self._json(404, {"error": "not-found"})

    def do_POST(self) -> None:  # noqa: N802
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        try:
            if parts == ["drain"]:
                self._body()  # drain takes no body, but read it defensively
                self.service.request_drain()
                self._json(202, {"draining": True})
                return
            if parts == ["campaigns"]:
                try:
                    manifest = manifest_from_submission(self._body())
                except (ValueError, KeyError, TypeError) as exc:
                    self._json(400, {"error": f"bad-request: {exc}"})
                    return
                rejection = self.service.submit(manifest)
                if rejection is not None:
                    if rejection.retry_after is not None:
                        # Shed load / open breaker / disk refusal: the
                        # client should come back, and we say when.
                        self._json(
                            503,
                            rejection.to_json(),
                            headers={
                                "Retry-After": str(
                                    max(1, round(rejection.retry_after))
                                )
                            },
                        )
                    else:
                        self._json(429, rejection.to_json())
                    return
                self._json(
                    202,
                    {"campaign": manifest.campaign_id, "state": "QUEUED"},
                )
                return
            self._json(404, {"error": "not-found"})
        except _BadBody as bad:
            self.close_connection = True
            self._json(bad.status, {"error": bad.error})


class ServiceHTTP:
    """Owns the HTTP server thread; writes ``http.json`` once bound."""

    def __init__(
        self,
        service: CampaignService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        handler_timeout: float | None = None,
    ) -> None:
        self.service = service
        overrides: dict = {"service": service}
        if handler_timeout is not None:
            # Tests shrink this so slow-loris gets its 408 quickly.
            overrides["timeout"] = handler_timeout
        handler = type("BoundHandler", (_Handler,), overrides)
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        path = self.service.store.root / "http.json"
        host, port = self.address
        path.write_text(
            json.dumps({"host": host, "port": port}) + "\n", encoding="utf-8"
        )
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="repro-serve-http",
        )
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# -- tiny client helpers (tests, chaos harness, CI smokes) -------------------


def _read_json(response) -> dict:
    """Parse a response body, tolerating servers (or middleboxes) that
    answer errors with non-JSON bytes — the client never raises
    ``JSONDecodeError`` at the caller."""
    raw = response.read()
    try:
        payload = json.loads(raw.decode("utf-8", errors="replace"))
    except json.JSONDecodeError:
        return {"error": "non-json-response", "raw": raw[:200].decode(
            "utf-8", errors="replace"
        )}
    if isinstance(payload, dict):
        return payload
    return {"error": "non-object-response", "raw": payload}


def _request_with_retries(
    request, *, timeout: float, retries: int, retry_seed: int
):
    """One urllib round-trip, optionally retried on *transient* transport
    failures (connection reset/refused, timeouts) with decorrelated-jitter
    sleeps.  HTTP error statuses are answers, not failures — they are
    returned, never retried (the server said no; 503's ``Retry-After`` is
    the caller's business).  On final failure returns ``(0, {"error":...})``
    instead of raising, so scripts can branch on the status."""
    import time

    jitter = DecorrelatedJitter(0.05, cap=1.0, seed=retry_seed)
    attempts = max(1, 1 + retries)
    last_error = "unreachable"
    for attempt in range(attempts):
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, _read_json(response)
        except urllib.error.HTTPError as error:
            return error.code, _read_json(error)
        except (urllib.error.URLError, OSError) as error:
            reason = getattr(error, "reason", error)
            last_error = f"{type(error).__name__}: {reason}"
            if attempt + 1 < attempts:
                time.sleep(jitter.next())
    return 0, {"error": f"connection-failed: {last_error}"}


def api_get(
    base_url: str,
    path: str,
    *,
    timeout: float = 10.0,
    retries: int = 0,
    retry_seed: int = 0,
):
    return _request_with_retries(
        base_url + path,
        timeout=timeout,
        retries=retries,
        retry_seed=retry_seed,
    )


def api_post(
    base_url: str,
    path: str,
    payload: dict,
    *,
    timeout: float = 10.0,
    retries: int = 0,
    retry_seed: int = 0,
):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return _request_with_retries(
        request, timeout=timeout, retries=retries, retry_seed=retry_seed
    )
