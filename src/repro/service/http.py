"""Stdlib JSON API for the campaign service (no third-party deps).

Endpoints::

    GET  /healthz                   liveness + drain state + fleet health
    GET  /campaigns                 all campaigns with their stored states
    POST /campaigns                 submit (202) or reject (429, structured)
    GET  /campaigns/<id>            status: state, progress, stats
    GET  /campaigns/<id>/findings   live findings from the journal
    GET  /campaigns/<id>/report     live repro-report summary
    POST /drain                     request an orderly drain (SIGTERM twin)

The handler threads only call the engine's lock-guarded query/submit
methods — they never touch the fleet — so the API stays read-consistent
with whatever the last fsync'd store record says.  The bound address is
written to ``<store>/http.json`` so tests and the chaos harness can find
an ephemeral port after the fact.

Submission body (all fields but ``seeds``/``targets`` optional)::

    {"id": "c1", "tenant": "alice", "seeds": [0, 1, 2],
     "targets": ["SwiftShader", ...], "references": [...], "donors": [...],
     "options": {...FuzzerOptions fields...},
     "robustness": {...RobustnessConfig fields...},
     "optimized_flow": true, "reduce": 1,
     "max_seconds": 120.0, "max_probes": 100000}
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.engine import CampaignService
from repro.service.store import CampaignManifest, spec_from_json


def manifest_from_submission(body: dict) -> CampaignManifest:
    """Build a :class:`CampaignManifest` from a POST /campaigns body."""
    if "seeds" not in body or "targets" not in body:
        raise ValueError("submission requires 'seeds' and 'targets'")
    campaign_id = str(body.get("id") or f"campaign-{abs(hash(tuple(body['seeds']))) % 10**8}")
    spec = spec_from_json(
        {
            "kind": body.get("kind", "core"),
            "target_names": list(body["targets"]),
            "reference_names": body.get("references"),
            "donor_names": body.get("donors"),
            "options": body.get("options"),
            "robustness": body.get("robustness"),
            "optimized_flow": body.get("optimized_flow", True),
        }
    )
    return CampaignManifest(
        campaign_id=campaign_id,
        spec=spec,
        seeds=tuple(int(seed) for seed in body["seeds"]),
        tenant=str(body.get("tenant", "default")),
        reduce=int(body.get("reduce", 0)),
        reduce_passes=tuple(
            str(name) for name in body.get("reduce_passes") or ()
        ),
        max_seconds=body.get("max_seconds"),
        max_probes=body.get("max_probes"),
    )


class _Handler(BaseHTTPRequestHandler):
    service: CampaignService  # set by make_server

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet; the service tracer is the log

    def _json(self, status: int, payload) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        body = json.loads(raw.decode("utf-8"))
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["healthz"]:
            self._json(200, self.service.healthz())
            return
        if parts == ["campaigns"]:
            self._json(200, {"campaigns": self.service.list_campaigns()})
            return
        if len(parts) >= 2 and parts[0] == "campaigns":
            campaign_id = parts[1]
            if len(parts) == 2:
                payload = self.service.status(campaign_id)
            elif parts[2] == "findings":
                found = self.service.findings(campaign_id)
                payload = None if found is None else {"findings": found}
            elif parts[2] == "report":
                payload = self.service.report(campaign_id)
            else:
                payload = None
            if payload is None:
                self._json(404, {"error": "not-found"})
            else:
                self._json(200, payload)
            return
        self._json(404, {"error": "not-found"})

    def do_POST(self) -> None:  # noqa: N802
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["drain"]:
            self.service.request_drain()
            self._json(202, {"draining": True})
            return
        if parts == ["campaigns"]:
            try:
                manifest = manifest_from_submission(self._body())
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                self._json(400, {"error": f"bad-request: {exc}"})
                return
            rejection = self.service.submit(manifest)
            if rejection is not None:
                self._json(429, rejection.to_json())
                return
            self._json(
                202,
                {"campaign": manifest.campaign_id, "state": "QUEUED"},
            )
            return
        self._json(404, {"error": "not-found"})


class ServiceHTTP:
    """Owns the HTTP server thread; writes ``http.json`` once bound."""

    def __init__(
        self,
        service: CampaignService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.server.server_address[:2]

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        path = self.service.store.root / "http.json"
        host, port = self.address
        path.write_text(
            json.dumps({"host": host, "port": port}) + "\n", encoding="utf-8"
        )
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="repro-serve-http",
        )
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# -- tiny client helpers (tests, chaos harness, CI smokes) -------------------


def api_get(base_url: str, path: str, *, timeout: float = 10.0):
    try:
        with urllib.request.urlopen(
            base_url + path, timeout=timeout
        ) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def api_post(base_url: str, path: str, payload: dict, *, timeout: float = 10.0):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))
