"""The campaign state machine the service persists and enforces.

A campaign moves through a small, explicitly whitelisted set of states::

    QUEUED ──> RUNNING ──> REDUCING ──> DONE
       │          │            │
       │          │            ├──────> QUARANTINED
       │          ├────────────┼──────> FAILED
       └──────────┼────────────┤
       │          │            │
       └──────────┴────────────┴──────> DEGRADED
    (QUEUED and RUNNING also reach FAILED directly)

plus one non-persistent decision, ``REJECTED`` — a submission the scheduler
refused (queue full, duplicate id).  Rejections are reported to the caller
but never written to the store: a rejected campaign owns no directory, so
backpressure cannot leak disk.

Every *persisted* transition is appended (fsync'd) to the campaign's
``meta.jsonl`` **before** the service acts on it, so a ``SIGKILL`` at any
instant leaves a replayable prefix: recovery folds the meta history through
:data:`TRANSITIONS` and refuses to load a store whose history contains an
illegal edge (see :meth:`repro.service.store.CampaignStore.check`).

Semantics of the terminal states:

* ``DONE`` — every seed journaled, requested reductions finished,
  ``result.json`` written atomically.
* ``QUARANTINED`` — same as ``DONE`` (the result exists and is complete),
  but at least one target exceeded the campaign's fault budget.  The
  service evaluates quarantine *post hoc* from journaled faults rather
  than skipping targets mid-campaign — that keeps every seed record a pure
  function of ``(spec, seed)``, which is what makes re-executed leases and
  ``SIGKILL`` recovery byte-identical.
* ``FAILED`` — the service gave up; the meta history's final record carries
  a structured ``reason`` (``"poisoned-batch"``, ``"fault-budget-exhausted"``,
  ``"time-budget-exhausted"``, ``"probe-budget-exhausted"``).
* ``DEGRADED`` — the *store* failed the campaign, not the campaign itself:
  a journal/meta/result write hit a real I/O error (ENOSPC, failed
  ``fsync``), so the service can no longer vouch for this campaign's
  durability.  The failure is fatal for the affected campaign only — other
  tenants' journals are untouched, which ``CampaignStore.check`` verifies —
  and the transition record carries the structured ``reason``
  (``"journal-write-failed"``, ``"finalize-io-error"``, ...).  If even the
  ``DEGRADED`` record cannot be written (the disk is the thing that is
  broken), the campaign is remembered as broken in memory and surfaced via
  the status API; the next start retries it from its durable prefix.
"""

from __future__ import annotations

QUEUED = "QUEUED"
RUNNING = "RUNNING"
REDUCING = "REDUCING"
DONE = "DONE"
FAILED = "FAILED"
QUARANTINED = "QUARANTINED"
DEGRADED = "DEGRADED"
#: Scheduler decision only — never stored, never a node in TRANSITIONS.
REJECTED = "REJECTED"

#: Every legal edge.  Anything else is corruption or a service bug, and the
#: store's invariant checker treats it as such.
TRANSITIONS: dict[str, frozenset[str]] = {
    QUEUED: frozenset({RUNNING, FAILED, DEGRADED}),
    RUNNING: frozenset({REDUCING, FAILED, DEGRADED}),
    REDUCING: frozenset({DONE, QUARANTINED, FAILED, DEGRADED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    QUARANTINED: frozenset(),
    DEGRADED: frozenset(),
}

TERMINAL = frozenset({DONE, FAILED, QUARANTINED, DEGRADED})


def is_terminal(state: str) -> bool:
    return state in TERMINAL


def can_transition(old: str, new: str) -> bool:
    return new in TRANSITIONS.get(old, frozenset())
