"""``repro.service``: campaigns as a crash-safe, multi-tenant service.

The CLI runs one campaign per process; this package runs *many* campaigns
over one shared worker fleet, durable against ``SIGKILL`` at any instant:

* :class:`CampaignStore` — per-campaign fsync'd state machine (``QUEUED ->
  RUNNING -> REDUCING -> DONE / FAILED / QUARANTINED``) layered on the
  proven :class:`~repro.robustness.CampaignJournal` /
  :class:`~repro.robustness.ReductionJournal` resume machinery;
* :class:`FairScheduler` — per-tenant fair-share queues with bounded
  admission (over-capacity submissions are explicitly REJECTED, never
  silently dropped);
* :class:`LeaseTable` / :class:`Watchdog` — lease-based worker supervision:
  per-seed heartbeats, expired leases re-queued exactly once, dead workers
  restarted with decorrelated-jitter backoff, fault budgets escalating to a
  structured FAILED;
* :class:`CampaignService` — the engine loop tying it together, with drain
  (``SIGTERM``) vs crash (``SIGKILL``) semantics;
* :class:`ServiceHTTP` — a stdlib JSON API to submit seeds, poll status,
  fetch findings, and stream live repro-report summaries.

See DESIGN.md §7 for the failure-mode matrix and the determinism argument
(results are byte-identical across crashes, restarts, and re-executed
leases).
"""

from repro.service.engine import CampaignService, ServiceConfig
from repro.service.fleet import WorkerFleet
from repro.service.leases import Lease, LeaseTable, Watchdog
from repro.service.scheduler import (
    Batch,
    FairScheduler,
    Rejection,
    plan_batches,
)
from repro.service.store import (
    CampaignManifest,
    CampaignStore,
    StoreError,
    spec_from_json,
    spec_to_json,
)

__all__ = [
    "Batch",
    "CampaignManifest",
    "CampaignService",
    "CampaignStore",
    "FairScheduler",
    "Lease",
    "LeaseTable",
    "Rejection",
    "ServiceConfig",
    "StoreError",
    "Watchdog",
    "WorkerFleet",
    "plan_batches",
    "spec_from_json",
    "spec_to_json",
]
