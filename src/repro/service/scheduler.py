"""Fair-share admission and batch scheduling across tenants.

Two layers:

* :class:`FairScheduler` — admission control.  Each tenant owns a FIFO of
  campaigns; admission is bounded (``max_queued`` campaigns service-wide)
  and over-capacity submissions are **explicitly rejected** with a
  structured reason — the service never silently drops work.  Campaign
  selection round-robins across tenants so one chatty tenant cannot starve
  the others: each turn serves the next tenant in rotation that has a
  runnable campaign.
* :class:`BatchPlan` — the deterministic unit of work.  A campaign's seed
  list is split into fixed, contiguous batches **once, at plan time**; a
  batch's identity ``(campaign, index)`` and seed contents never depend on
  scheduling, which is what lets an expired lease be re-granted and still
  journal byte-identical records.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Batch:
    """One grantable unit: a contiguous slice of a campaign's seeds."""

    campaign_id: str
    index: int
    seeds: tuple[int, ...]

    @property
    def key(self) -> tuple[str, int]:
        return (self.campaign_id, self.index)


def plan_batches(
    campaign_id: str, seeds: tuple[int, ...], batch_size: int
) -> list[Batch]:
    """Split *seeds* into contiguous batches of at most *batch_size*."""
    size = max(1, int(batch_size))
    return [
        Batch(campaign_id, index, tuple(seeds[start : start + size]))
        for index, start in enumerate(range(0, len(seeds), size))
    ]


@dataclass
class Rejection:
    """Why a submission was refused (returned to the caller, never stored)."""

    campaign_id: str
    reason: str
    #: Backpressure hint (seconds) for retryable rejections — load shedding
    #: and open circuit breakers set it; the HTTP layer maps it to a 503
    #: with a ``Retry-After`` header.  ``None`` means "don't retry blindly"
    #: (duplicate id, draining).
    retry_after: float | None = None

    def to_json(self) -> dict:
        payload = {
            "campaign": self.campaign_id,
            "decision": "REJECTED",
            "reason": self.reason,
        }
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        return payload


@dataclass
class _CampaignQueue:
    """Per-campaign work remaining: batches not yet granted."""

    tenant: str
    pending: deque = field(default_factory=deque)  # of Batch


class FairScheduler:
    """Round-robin fair-share scheduler with bounded admission.

    Not thread-safe by itself — the engine serializes access under its own
    lock (the HTTP layer calls through the engine, never directly here).
    """

    def __init__(self, *, max_queued: int = 32) -> None:
        self.max_queued = max(1, int(max_queued))
        #: campaign id -> its queue; insertion order preserved per tenant.
        self._campaigns: dict[str, _CampaignQueue] = {}
        #: tenant -> campaign ids in submission order.
        self._tenants: "OrderedDict[str, deque[str]]" = OrderedDict()
        #: Rotation cursor: tenants served round-robin from this list.
        self._rotation: deque[str] = deque()

    # -- admission -----------------------------------------------------------

    def queued_campaigns(self) -> int:
        return len(self._campaigns)

    def admit(
        self,
        campaign_id: str,
        tenant: str,
        batches: list[Batch],
        *,
        force: bool = False,
    ) -> Rejection | None:
        """Admit a campaign's batches; ``None`` on success, else a
        :class:`Rejection` explaining the refusal.  ``force`` bypasses the
        capacity bound (crash recovery re-admits everything the store
        already accepted — durable work is never rejected retroactively)."""
        if campaign_id in self._campaigns:
            return Rejection(campaign_id, "duplicate-campaign-id")
        if not force and len(self._campaigns) >= self.max_queued:
            return Rejection(campaign_id, "queue-full")
        queue = _CampaignQueue(tenant=tenant, pending=deque(batches))
        self._campaigns[campaign_id] = queue
        if tenant not in self._tenants:
            self._tenants[tenant] = deque()
            self._rotation.append(tenant)
        self._tenants[tenant].append(campaign_id)
        return None

    def discard(self, campaign_id: str) -> None:
        """Forget a campaign (it failed or finished): drop its queue and
        remove it from its tenant's FIFO."""
        queue = self._campaigns.pop(campaign_id, None)
        if queue is None:
            return
        tenant_queue = self._tenants.get(queue.tenant)
        if tenant_queue is not None:
            try:
                tenant_queue.remove(campaign_id)
            except ValueError:
                pass

    def requeue(self, batch: Batch) -> None:
        """Put an expired lease's batch back at the *front* of its campaign's
        queue, so the retry runs before untouched batches."""
        queue = self._campaigns.get(batch.campaign_id)
        if queue is not None:
            queue.pending.appendleft(batch)

    # -- granting ------------------------------------------------------------

    def next_batch(self) -> Batch | None:
        """The next batch under fair-share rotation, or ``None`` if idle.

        Serves tenants in round-robin order; within a tenant, campaigns in
        submission order; within a campaign, batches in index order (with
        requeued batches first).  A tenant with no pending work is skipped
        without losing its rotation slot.
        """
        for _ in range(len(self._rotation)):
            tenant = self._rotation[0]
            self._rotation.rotate(-1)
            for campaign_id in self._tenants.get(tenant, ()):  # FIFO order
                queue = self._campaigns.get(campaign_id)
                if queue is not None and queue.pending:
                    return queue.pending.popleft()
        return None

    def pending_batches(self, campaign_id: str) -> int:
        queue = self._campaigns.get(campaign_id)
        return len(queue.pending) if queue is not None else 0

    def has_pending(self) -> bool:
        return any(q.pending for q in self._campaigns.values())
