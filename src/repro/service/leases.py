"""Lease-based worker supervision: heartbeats, expiry, and the watchdog.

A batch granted to a fleet worker is tracked by a :class:`Lease` with a
TTL.  Every per-seed result the worker streams back is a heartbeat — it
pushes the lease deadline out — so a lease only expires when a worker
stops making progress (hung probe, livelock, silent death).  Expiry policy:

* first expiry of a batch → the worker is killed, the batch is re-queued
  **exactly once**, and the re-execution is counted in the campaign's
  stats (results stay byte-identical: the journal dedups by seed and each
  record is a pure function of ``(spec, seed)``);
* second expiry of the *same* batch → the batch is declared poisoned and
  its campaign FAILED with a structured reason — a deterministic hang
  would otherwise cycle workers forever.

The :class:`Watchdog` tracks fleet health orthogonally: worker deaths are
retried with decorrelated-jitter backoff (so a crash-looping fleet does
not restart in lockstep), and each death/expiry charges the affected
campaign's fault budget; an exhausted budget fails the campaign with
``fault-budget-exhausted`` rather than burning the fleet indefinitely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.robustness.retry import DecorrelatedJitter
from repro.service.scheduler import Batch


@dataclass
class Lease:
    """One granted batch: who runs it, until when, and which attempt."""

    batch: Batch
    worker_id: int
    deadline: float
    attempt: int = 1  # 1 = first grant, 2 = the single allowed re-grant
    #: Seeds already journaled under this lease (progress accounting).
    completed: set = field(default_factory=set)

    @property
    def key(self) -> tuple[str, int]:
        return self.batch.key


class LeaseTable:
    """Active leases keyed by worker; expiry scanning for the engine loop."""

    def __init__(self, *, ttl: float = 30.0) -> None:
        self.ttl = ttl
        self._by_worker: dict[int, Lease] = {}
        #: batch key -> highest attempt granted so far (survives lease loss).
        self._attempts: dict[tuple[str, int], int] = {}

    def grant(self, batch: Batch, worker_id: int, now: float) -> Lease:
        attempt = self._attempts.get(batch.key, 0) + 1
        self._attempts[batch.key] = attempt
        lease = Lease(
            batch=batch,
            worker_id=worker_id,
            deadline=now + self.ttl,
            attempt=attempt,
        )
        self._by_worker[worker_id] = lease
        return lease

    def heartbeat(self, worker_id: int, now: float) -> None:
        lease = self._by_worker.get(worker_id)
        if lease is not None:
            lease.deadline = now + self.ttl

    def release(self, worker_id: int) -> Lease | None:
        return self._by_worker.pop(worker_id, None)

    def lease_for(self, worker_id: int) -> Lease | None:
        return self._by_worker.get(worker_id)

    def expired(self, now: float) -> list[Lease]:
        return [
            lease
            for lease in self._by_worker.values()
            if now > lease.deadline
        ]

    def active(self) -> list[Lease]:
        return list(self._by_worker.values())

    def active_for(self, campaign_id: str) -> list[Lease]:
        return [
            lease
            for lease in self._by_worker.values()
            if lease.batch.campaign_id == campaign_id
        ]

    def attempts(self, batch: Batch) -> int:
        return self._attempts.get(batch.key, 0)

    def forget_campaign(self, campaign_id: str) -> None:
        """Drop attempt bookkeeping and leases for a finished campaign."""
        self._attempts = {
            key: value
            for key, value in self._attempts.items()
            if key[0] != campaign_id
        }
        self._by_worker = {
            worker_id: lease
            for worker_id, lease in self._by_worker.items()
            if lease.batch.campaign_id != campaign_id
        }


class Watchdog:
    """Fleet-restart backoff and per-campaign fault budgets."""

    def __init__(
        self,
        *,
        restart_backoff: float = 0.05,
        restart_cap: float = 2.0,
        jitter_seed: int = 0,
        fault_budget: int = 5,
    ) -> None:
        self._jitter = DecorrelatedJitter(
            restart_backoff, cap=restart_cap, seed=jitter_seed
        )
        self.fault_budget = max(1, int(fault_budget))
        self._faults: dict[str, int] = {}
        self._restarts = 0
        #: Monotonic timestamp before which no worker restart may happen.
        self._hold_until = 0.0

    # -- restart pacing ------------------------------------------------------

    def note_worker_death(self, now: float) -> None:
        """A worker died or was killed: schedule the next restart after a
        decorrelated-jitter delay (grows while deaths keep coming)."""
        self._restarts += 1
        self._hold_until = max(self._hold_until, now) + self._jitter.next()

    def note_worker_healthy(self) -> None:
        """A restarted worker delivered a full batch: reset the backoff."""
        self._jitter.reset()
        self._hold_until = 0.0

    def may_restart(self, now: float) -> bool:
        return now >= self._hold_until

    @property
    def restarts(self) -> int:
        return self._restarts

    # -- fault budgets -------------------------------------------------------

    def charge(self, campaign_id: str) -> int:
        """Charge one fault (worker death / lease expiry) to a campaign;
        returns the campaign's total so far."""
        total = self._faults.get(campaign_id, 0) + 1
        self._faults[campaign_id] = total
        return total

    def exhausted(self, campaign_id: str) -> bool:
        return self._faults.get(campaign_id, 0) >= self.fault_budget

    def faults(self, campaign_id: str) -> int:
        return self._faults.get(campaign_id, 0)

    def forget_campaign(self, campaign_id: str) -> None:
        self._faults.pop(campaign_id, None)
